"""Reference x86-64 decoder: the original branch-chain implementation.

This is the pre-optimisation decoder, kept verbatim as the ground truth
for the table-driven fast decoder in :mod:`repro.x86.decoder`.  The
differential test (``tests/test_cold_kernel.py``) decodes every corpus
text segment with both and asserts instruction-for-instruction equality,
including the error behaviour on unsupported/truncated byte sequences.

Not used by any analysis path — only by tests and benchmarks.
"""

from __future__ import annotations

import struct

from ..errors import DecodeError
from .insn import CONDITION_CODES, Immediate, Instruction, Memory, Operand
from .registers import GPR64, Register

_ALU_BY_GROUP = {0: "add", 1: "or", 4: "and", 5: "sub", 6: "xor", 7: "cmp"}
_ALU_BY_MR = {0x01: "add", 0x09: "or", 0x21: "and", 0x29: "sub", 0x31: "xor", 0x39: "cmp"}
_ALU_BY_RM = {0x03: "add", 0x0B: "or", 0x23: "and", 0x2B: "sub", 0x33: "xor", 0x3B: "cmp"}
_SCALES = (1, 2, 4, 8)


class _Cursor:
    """A byte cursor over the code being decoded."""

    def __init__(self, data: bytes, offset: int, addr: int):
        self.data = data
        self.pos = offset
        self.start = offset
        self.addr = addr  # virtual address of the first byte

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("truncated instruction", self.addr)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def i8(self) -> int:
        return struct.unpack("<b", bytes([self.u8()]))[0]

    def i32(self) -> int:
        raw = self.take(4)
        return struct.unpack("<i", raw)[0]

    def u32(self) -> int:
        raw = self.take(4)
        return struct.unpack("<I", raw)[0]

    def u64(self) -> int:
        raw = self.take(8)
        return struct.unpack("<Q", raw)[0]

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise DecodeError("truncated instruction", self.addr)
        raw = self.data[self.pos:self.pos + n]
        self.pos += n
        return raw

    @property
    def size(self) -> int:
        return self.pos - self.start


class _Rex:
    def __init__(self, byte: int | None):
        self.present = byte is not None
        byte = byte or 0
        self.w = (byte >> 3) & 1
        self.r = (byte >> 2) & 1
        self.x = (byte >> 1) & 1
        self.b = byte & 1

    @property
    def width(self) -> int:
        return 64 if self.w else 32


def _reg(num: int, width: int) -> Register:
    return Register(GPR64[num], width)


def _decode_modrm(cur: _Cursor, rex: _Rex, width: int) -> tuple[int, Operand, bool]:
    """Decode ModRM (+SIB/disp).  Returns (reg_field, rm_operand, rip_rel).

    RIP-relative displacements are returned raw; the caller resolves them to
    absolute addresses once the instruction length is known.
    """
    modrm = cur.u8()
    mod = modrm >> 6
    reg_field = ((modrm >> 3) & 7) | (rex.r << 3)
    rm = (modrm & 7) | (rex.b << 3)

    if mod == 3:
        return reg_field, _reg(rm, width), False

    if mod == 0 and (modrm & 7) == 5:
        # RIP-relative disp32.
        disp = cur.i32()
        return reg_field, Memory(disp=disp, width=width, rip_relative=True), True

    base: Register | None = None
    index: Register | None = None
    scale = 1
    if (modrm & 7) == 4:
        sib = cur.u8()
        scale = _SCALES[sib >> 6]
        index_num = ((sib >> 3) & 7) | (rex.x << 3)
        base_num = (sib & 7) | (rex.b << 3)
        if index_num != 4:  # 100 = no index
            index = _reg(index_num, 64)
        if mod == 0 and (sib & 7) == 5:
            disp = cur.i32()
            if index is None:
                # Absolute [disp32].
                return reg_field, Memory(disp=disp & 0xFFFFFFFF, width=width), False
            return (
                reg_field,
                Memory(index=index, scale=scale, disp=disp, width=width),
                False,
            )
        base = _reg(base_num, 64)
    else:
        base = _reg(rm, 64)

    if mod == 0:
        disp = 0
    elif mod == 1:
        disp = cur.i8()
    else:
        disp = cur.i32()
    return reg_field, Memory(base=base, index=index, scale=scale, disp=disp, width=width), False


def _resolve_rip(op: Operand, insn_end: int) -> Operand:
    """Convert a raw RIP-relative displacement to an absolute address."""
    if isinstance(op, Memory) and op.rip_relative:
        return Memory(disp=op.disp + insn_end, width=op.width, rip_relative=True)
    return op


def decode(data: bytes, offset: int = 0, addr: int = 0) -> Instruction:
    """Decode one instruction from ``data`` at ``offset``, placed at ``addr``."""
    cur = _Cursor(data, offset, addr)

    rex_byte: int | None = None
    byte = cur.u8()
    if 0x40 <= byte <= 0x4F:
        rex_byte = byte
        byte = cur.u8()
    rex = _Rex(rex_byte)
    width = rex.width

    mnemonic, operands = _decode_opcode(cur, rex, width, byte, addr)

    size = cur.size
    raw = data[offset:offset + size]
    end = addr + size
    operands = tuple(_resolve_rip(op, end) for op in operands)
    return Instruction(mnemonic, operands, addr=addr, size=size, raw=raw)


def _decode_opcode(
    cur: _Cursor, rex: _Rex, width: int, byte: int, addr: int
) -> tuple[str, tuple[Operand, ...]]:
    # -- single-byte, no ModRM -------------------------------------------
    if byte == 0xC3:
        return "ret", ()
    if byte == 0x90:
        return "nop", ()
    if byte == 0xF4:
        return "hlt", ()
    if byte == 0xCC:
        return "int3", ()
    if byte == 0x99:
        return ("cqo", ()) if rex.w else ("cdq", ())

    # -- two-byte opcodes (0F xx) ----------------------------------------
    if byte == 0x0F:
        second = cur.u8()
        if second == 0x05:
            return "syscall", ()
        if second == 0x0B:
            return "ud2", ()
        if 0x80 <= second <= 0x8F:
            rel = cur.i32()
            target = addr + cur.size + rel
            return f"j{CONDITION_CODES[second & 0xF]}", (Immediate(target, 64),)
        if 0x40 <= second <= 0x4F:
            reg_field, rm, __ = _decode_modrm(cur, rex, width)
            return f"cmov{CONDITION_CODES[second & 0xF]}", (_reg(reg_field, width), rm)
        if second == 0xAF:
            reg_field, rm, __ = _decode_modrm(cur, rex, width)
            return "imul", (_reg(reg_field, width), rm)
        if second in (0xB6, 0xB7, 0xBE, 0xBF):
            reg_field, rm, __ = _decode_modrm(cur, rex, width)
            if not isinstance(rm, Memory):
                raise DecodeError("movzx/movsx register sources unsupported", addr)
            src_width = 8 if second in (0xB6, 0xBE) else 16
            rm = Memory(base=rm.base, index=rm.index, scale=rm.scale,
                        disp=rm.disp, width=src_width, rip_relative=rm.rip_relative)
            mnemonic = "movzx" if second in (0xB6, 0xB7) else "movsx"
            return mnemonic, (_reg(reg_field, width), rm)
        raise DecodeError(f"unsupported 0F opcode {second:#04x}", addr)

    # -- movsxd -------------------------------------------------------------
    if byte == 0x63:
        reg_field, rm, __ = _decode_modrm(cur, rex, 32)
        return "movsxd", (_reg(reg_field, 64), rm)

    # -- push/pop ---------------------------------------------------------
    if 0x50 <= byte <= 0x57:
        return "push", (_reg((byte & 7) | (rex.b << 3), 64),)
    if 0x58 <= byte <= 0x5F:
        return "pop", (_reg((byte & 7) | (rex.b << 3), 64),)
    if byte == 0x68:
        return "push", (Immediate(cur.i32(), 32),)

    # -- mov imm to register ---------------------------------------------
    if 0xB8 <= byte <= 0xBF:
        num = (byte & 7) | (rex.b << 3)
        if rex.w:
            return "mov", (_reg(num, 64), Immediate(cur.u64(), 64))
        return "mov", (_reg(num, 32), Immediate(cur.u32(), 32))

    # -- ALU op r/m, r and op r, r/m ---------------------------------------
    if byte in _ALU_BY_MR:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        return _ALU_BY_MR[byte], (rm, _reg(reg_field, width))
    if byte in _ALU_BY_RM:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        return _ALU_BY_RM[byte], (_reg(reg_field, width), rm)

    # -- ALU group with immediate ------------------------------------------
    if byte in (0x81, 0x83):
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        group = reg_field & 7
        if group not in _ALU_BY_GROUP:
            raise DecodeError(f"unsupported ALU group {group}", addr)
        if byte == 0x83:
            imm = Immediate(cur.i8(), 8)
        else:
            imm = Immediate(cur.i32(), 32)
        return _ALU_BY_GROUP[group], (rm, imm)

    # -- test ---------------------------------------------------------------
    if byte == 0x85:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        return "test", (rm, _reg(reg_field, width))
    if byte == 0xF7:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        group = reg_field & 7
        if group == 0:
            return "test", (rm, Immediate(cur.i32(), 32))
        if group == 2:
            return "not", (rm,)
        if group == 3:
            return "neg", (rm,)
        raise DecodeError(f"unsupported F7 group {group}", addr)

    # -- mov r/m forms -------------------------------------------------------
    if byte == 0x89:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        return "mov", (rm, _reg(reg_field, width))
    if byte == 0x8B:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        return "mov", (_reg(reg_field, width), rm)
    if byte == 0xC7:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        if (reg_field & 7) != 0:
            raise DecodeError("unsupported C7 group", addr)
        return "mov", (rm, Immediate(cur.i32(), 32))

    # -- lea ------------------------------------------------------------------
    if byte == 0x8D:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        if not isinstance(rm, Memory):
            raise DecodeError("lea requires a memory operand", addr)
        return "lea", (_reg(reg_field, 64), rm)

    # -- shifts ------------------------------------------------------------
    if byte == 0xC1:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        group = reg_field & 7
        count = Immediate(cur.u8(), 8)
        if group == 4:
            return "shl", (rm, count)
        if group == 5:
            return "shr", (rm, count)
        raise DecodeError(f"unsupported shift group {group}", addr)

    # -- branches -------------------------------------------------------------
    if byte == 0xE8:
        rel = cur.i32()
        return "call", (Immediate(addr + cur.size + rel, 64),)
    if byte == 0xE9:
        rel = cur.i32()
        return "jmp", (Immediate(addr + cur.size + rel, 64),)
    if byte == 0xEB:
        rel = cur.i8()
        return "jmp", (Immediate(addr + cur.size + rel, 64),)
    if 0x70 <= byte <= 0x7F:
        rel = cur.i8()
        target = addr + cur.size + rel
        return f"j{CONDITION_CODES[byte & 0xF]}", (Immediate(target, 64),)
    if byte == 0xFF:
        reg_field, rm, __ = _decode_modrm(cur, rex, width)
        group = reg_field & 7
        if group == 0:
            return "inc", (rm,)
        if group == 1:
            return "dec", (rm,)
        # call/jmp r/m default to 64-bit operands in long mode.
        if isinstance(rm, Register):
            rm = rm.as_width(64)
        elif isinstance(rm, Memory) and rm.width != 64:
            rm = Memory(base=rm.base, index=rm.index, scale=rm.scale,
                        disp=rm.disp, width=64, rip_relative=rm.rip_relative)
        if group == 2:
            return "call", (rm,)
        if group == 4:
            return "jmp", (rm,)
        raise DecodeError(f"unsupported FF group {group}", addr)

    raise DecodeError(f"unsupported opcode {byte:#04x}", addr)


def decode_all(data: bytes, base_addr: int = 0) -> list[Instruction]:
    """Linear-sweep decode of an entire code buffer starting at ``base_addr``."""
    out: list[Instruction] = []
    pos = 0
    while pos < len(data):
        insn = decode(data, pos, base_addr + pos)
        out.append(insn)
        pos += insn.size
    return out
