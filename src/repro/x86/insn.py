"""Instruction intermediate representation for the x86-64 subset.

The IR is shared by the encoder, decoder, symbolic engine and concrete
emulator.  It models the slice of x86-64 that compiled code uses around
system-call invocation: integer moves, address formation (``lea``), ALU
operations, stack traffic, control flow, and ``syscall`` itself.

Every instruction of every image flows through these constructors and
classification properties, so the classes are hand-written slotted
types rather than frozen dataclasses: a frozen dataclass ``__init__``
pays one ``object.__setattr__`` call per field, which dominated decode
time, and the classification properties are single frozenset lookups
over precomputed mnemonic tables instead of chained string tests.
Equality, hashing and ``repr`` match the original dataclass behaviour
(the decoder differential test compares against the pre-optimisation
reference decoder, which builds the same objects).
"""

from __future__ import annotations

from typing import Union

from .registers import Register

#: Condition codes, keyed by the low nibble of the Jcc opcode.
CONDITION_CODES = {
    0x0: "o", 0x1: "no", 0x2: "b", 0x3: "ae",
    0x4: "e", 0x5: "ne", 0x6: "be", 0x7: "a",
    0x8: "s", 0x9: "ns", 0xA: "p", 0xB: "np",
    0xC: "l", 0xD: "ge", 0xE: "le", 0xF: "g",
}
CC_NUMBERS = {name: num for num, name in CONDITION_CODES.items()}


class Immediate:
    """An immediate operand.

    Attributes:
        value: the signed Python integer value.
        width: encoded width in bits (8, 32 or 64).
    """

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int = 32):
        self.value = value
        self.width = width

    def __eq__(self, other) -> bool:
        return (
            type(other) is Immediate
            and self.value == other.value
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.value, self.width))

    def __repr__(self) -> str:
        return f"Immediate(value={self.value!r}, width={self.width!r})"

    def __str__(self) -> str:
        return f"${self.value:#x}" if self.value >= 0 else f"$-{-self.value:#x}"


class Memory:
    """A memory operand: ``disp(base, index, scale)`` or RIP-relative.

    ``rip_relative`` memory uses only ``disp`` (relative to the *next*
    instruction's address).  An absolute 32-bit address is expressed with
    ``base=None, index=None``.
    """

    __slots__ = ("base", "index", "scale", "disp", "width", "rip_relative")

    def __init__(
        self,
        base: Register | None = None,
        index: Register | None = None,
        scale: int = 1,
        disp: int = 0,
        width: int = 64,
        rip_relative: bool = False,
    ):
        if scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid SIB scale {scale}")
        if rip_relative and (base or index):
            raise ValueError("RIP-relative memory cannot have base/index")
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp
        self.width = width
        self.rip_relative = rip_relative

    def __eq__(self, other) -> bool:
        return (
            type(other) is Memory
            and self.disp == other.disp
            and self.base == other.base
            and self.index == other.index
            and self.scale == other.scale
            and self.width == other.width
            and self.rip_relative == other.rip_relative
        )

    def __hash__(self) -> int:
        return hash((self.base, self.index, self.scale, self.disp,
                     self.width, self.rip_relative))

    def __repr__(self) -> str:
        return (
            f"Memory(base={self.base!r}, index={self.index!r}, "
            f"scale={self.scale!r}, disp={self.disp!r}, "
            f"width={self.width!r}, rip_relative={self.rip_relative!r})"
        )

    def __str__(self) -> str:
        if self.rip_relative:
            return f"{self.disp:#x}(%rip)"
        parts = ""
        if self.base is not None:
            parts += str(self.base)
        if self.index is not None:
            parts += f", {self.index}, {self.scale}"
        return f"{self.disp:#x}({parts})"


Operand = Union[Register, Immediate, Memory]


#: Mnemonics understood by the toolchain, grouped by behaviour.
DATA_MNEMONICS = frozenset(
    {"mov", "lea", "movabs", "movzx", "movsx", "movsxd"}
    | {f"cmov{cc}" for cc in CONDITION_CODES.values()}
)
ALU_MNEMONICS = frozenset({
    "add", "sub", "xor", "and", "or", "shl", "shr", "imul",
    "inc", "dec", "neg", "not",
})
COMPARE_MNEMONICS = frozenset({"cmp", "test"})
STACK_MNEMONICS = frozenset({"push", "pop"})
BRANCH_MNEMONICS = frozenset(
    {"jmp", "call", "ret", "syscall", "hlt", "ud2", "int3"}
    | {f"j{cc}" for cc in CONDITION_CODES.values()}
)
MISC_MNEMONICS = frozenset({"nop", "cdq", "cqo"})

ALL_MNEMONICS = (
    DATA_MNEMONICS | ALU_MNEMONICS | COMPARE_MNEMONICS
    | STACK_MNEMONICS | BRANCH_MNEMONICS | MISC_MNEMONICS
)

# ---- precomputed classification tables (one frozenset lookup each) ----
_CONDITIONAL_MNEMONICS = frozenset(f"j{cc}" for cc in CONDITION_CODES.values())
_JUMP_MNEMONICS = _CONDITIONAL_MNEMONICS | {"jmp"}
_HALT_MNEMONICS = frozenset({"hlt", "ud2", "int3"})
_TERMINATOR_MNEMONICS = (
    _JUMP_MNEMONICS | _HALT_MNEMONICS | {"call", "ret", "syscall"}
)
_BRANCHING_MNEMONICS = _JUMP_MNEMONICS | {"call"}


class Instruction:
    """A decoded (or to-be-encoded) instruction.

    Attributes:
        mnemonic: lower-case mnemonic (``mov``, ``jne``, ``syscall``...).
        operands: destination-first operand tuple (AT&T readers beware).
        addr: virtual address of the instruction (0 when free-standing).
        size: encoded size in bytes (0 when not yet encoded).
        raw: the encoded bytes (empty when not yet encoded).
    """

    __slots__ = ("mnemonic", "operands", "addr", "size", "raw")

    def __init__(
        self,
        mnemonic: str,
        operands: tuple[Operand, ...] = (),
        addr: int = 0,
        size: int = 0,
        raw: bytes = b"",
    ):
        if mnemonic not in ALL_MNEMONICS:
            raise ValueError(f"unknown mnemonic {mnemonic!r}")
        self.mnemonic = mnemonic
        self.operands = operands
        self.addr = addr
        self.size = size
        self.raw = raw

    def __eq__(self, other) -> bool:
        return (
            type(other) is Instruction
            and self.addr == other.addr
            and self.mnemonic == other.mnemonic
            and self.operands == other.operands
            and self.size == other.size
            and self.raw == other.raw
        )

    def __hash__(self) -> int:
        return hash((self.mnemonic, self.operands, self.addr, self.size,
                     self.raw))

    def __repr__(self) -> str:
        return (
            f"Instruction(mnemonic={self.mnemonic!r}, "
            f"operands={self.operands!r}, addr={self.addr!r}, "
            f"size={self.size!r})"
        )

    # -- classification helpers ------------------------------------------

    @property
    def end(self) -> int:
        """Address of the next sequential instruction."""
        return self.addr + self.size

    @property
    def is_syscall(self) -> bool:
        return self.mnemonic == "syscall"

    @property
    def is_call(self) -> bool:
        return self.mnemonic == "call"

    @property
    def is_ret(self) -> bool:
        return self.mnemonic == "ret"

    @property
    def is_jump(self) -> bool:
        return self.mnemonic in _JUMP_MNEMONICS

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic in _CONDITIONAL_MNEMONICS

    @property
    def is_halt(self) -> bool:
        return self.mnemonic in _HALT_MNEMONICS

    @property
    def terminates_block(self) -> bool:
        """Whether this instruction ends a basic block."""
        return self.mnemonic in _TERMINATOR_MNEMONICS

    @property
    def is_direct_branch(self) -> bool:
        """Direct call/jmp/jcc (immediate target)."""
        return (
            self.mnemonic in _BRANCHING_MNEMONICS
            and len(self.operands) == 1
            and type(self.operands[0]) is Immediate
        )

    @property
    def is_indirect_branch(self) -> bool:
        """Indirect call/jmp through a register or memory operand."""
        return (
            (self.mnemonic == "call" or self.mnemonic == "jmp")
            and len(self.operands) == 1
            and type(self.operands[0]) is not Immediate
        )

    def branch_target(self) -> int | None:
        """Absolute target of a direct branch, else ``None``.

        Relative branches are stored with their *resolved absolute* target
        in the immediate operand, which requires ``addr``/``size`` to have
        been fixed by the decoder or assembler.
        """
        if self.is_direct_branch:
            target = self.operands[0]
            assert isinstance(target, Immediate)
            return target.value
        return None

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in reversed(self.operands))
        return f"{self.mnemonic} {ops}".strip()
