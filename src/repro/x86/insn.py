"""Instruction intermediate representation for the x86-64 subset.

The IR is shared by the encoder, decoder, symbolic engine and concrete
emulator.  It models the slice of x86-64 that compiled code uses around
system-call invocation: integer moves, address formation (``lea``), ALU
operations, stack traffic, control flow, and ``syscall`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .registers import Register

#: Condition codes, keyed by the low nibble of the Jcc opcode.
CONDITION_CODES = {
    0x0: "o", 0x1: "no", 0x2: "b", 0x3: "ae",
    0x4: "e", 0x5: "ne", 0x6: "be", 0x7: "a",
    0x8: "s", 0x9: "ns", 0xA: "p", 0xB: "np",
    0xC: "l", 0xD: "ge", 0xE: "le", 0xF: "g",
}
CC_NUMBERS = {name: num for num, name in CONDITION_CODES.items()}


@dataclass(frozen=True, slots=True)
class Immediate:
    """An immediate operand.

    Attributes:
        value: the signed Python integer value.
        width: encoded width in bits (8, 32 or 64).
    """

    value: int
    width: int = 32

    def __str__(self) -> str:
        return f"${self.value:#x}" if self.value >= 0 else f"$-{-self.value:#x}"


@dataclass(frozen=True, slots=True)
class Memory:
    """A memory operand: ``disp(base, index, scale)`` or RIP-relative.

    ``rip_relative`` memory uses only ``disp`` (relative to the *next*
    instruction's address).  An absolute 32-bit address is expressed with
    ``base=None, index=None``.
    """

    base: Register | None = None
    index: Register | None = None
    scale: int = 1
    disp: int = 0
    width: int = 64
    rip_relative: bool = False

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid SIB scale {self.scale}")
        if self.rip_relative and (self.base or self.index):
            raise ValueError("RIP-relative memory cannot have base/index")

    def __str__(self) -> str:
        if self.rip_relative:
            return f"{self.disp:#x}(%rip)"
        parts = ""
        if self.base is not None:
            parts += str(self.base)
        if self.index is not None:
            parts += f", {self.index}, {self.scale}"
        return f"{self.disp:#x}({parts})"


Operand = Union[Register, Immediate, Memory]


#: Mnemonics understood by the toolchain, grouped by behaviour.
DATA_MNEMONICS = frozenset(
    {"mov", "lea", "movabs", "movzx", "movsx", "movsxd"}
    | {f"cmov{cc}" for cc in CONDITION_CODES.values()}
)
ALU_MNEMONICS = frozenset({
    "add", "sub", "xor", "and", "or", "shl", "shr", "imul",
    "inc", "dec", "neg", "not",
})
COMPARE_MNEMONICS = frozenset({"cmp", "test"})
STACK_MNEMONICS = frozenset({"push", "pop"})
BRANCH_MNEMONICS = frozenset(
    {"jmp", "call", "ret", "syscall", "hlt", "ud2", "int3"}
    | {f"j{cc}" for cc in CONDITION_CODES.values()}
)
MISC_MNEMONICS = frozenset({"nop", "cdq", "cqo"})

ALL_MNEMONICS = (
    DATA_MNEMONICS | ALU_MNEMONICS | COMPARE_MNEMONICS
    | STACK_MNEMONICS | BRANCH_MNEMONICS | MISC_MNEMONICS
)


@dataclass(frozen=True, slots=True)
class Instruction:
    """A decoded (or to-be-encoded) instruction.

    Attributes:
        mnemonic: lower-case mnemonic (``mov``, ``jne``, ``syscall``...).
        operands: destination-first operand tuple (AT&T readers beware).
        addr: virtual address of the instruction (0 when free-standing).
        size: encoded size in bytes (0 when not yet encoded).
        raw: the encoded bytes (empty when not yet encoded).
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    addr: int = 0
    size: int = 0
    raw: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if self.mnemonic not in ALL_MNEMONICS:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")

    # -- classification helpers ------------------------------------------

    @property
    def end(self) -> int:
        """Address of the next sequential instruction."""
        return self.addr + self.size

    @property
    def is_syscall(self) -> bool:
        return self.mnemonic == "syscall"

    @property
    def is_call(self) -> bool:
        return self.mnemonic == "call"

    @property
    def is_ret(self) -> bool:
        return self.mnemonic == "ret"

    @property
    def is_jump(self) -> bool:
        return self.mnemonic == "jmp" or self.is_conditional

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic.startswith("j") and self.mnemonic != "jmp"

    @property
    def is_halt(self) -> bool:
        return self.mnemonic in ("hlt", "ud2", "int3")

    @property
    def terminates_block(self) -> bool:
        """Whether this instruction ends a basic block."""
        return (
            self.is_jump or self.is_ret or self.is_call
            or self.is_syscall or self.is_halt
        )

    @property
    def is_direct_branch(self) -> bool:
        """Direct call/jmp/jcc (immediate target)."""
        return (
            (self.is_call or self.is_jump)
            and len(self.operands) == 1
            and isinstance(self.operands[0], Immediate)
        )

    @property
    def is_indirect_branch(self) -> bool:
        """Indirect call/jmp through a register or memory operand."""
        return (
            (self.is_call or self.mnemonic == "jmp")
            and len(self.operands) == 1
            and not isinstance(self.operands[0], Immediate)
        )

    def branch_target(self) -> int | None:
        """Absolute target of a direct branch, else ``None``.

        Relative branches are stored with their *resolved absolute* target
        in the immediate operand, which requires ``addr``/``size`` to have
        been fixed by the decoder or assembler.
        """
        if self.is_direct_branch:
            target = self.operands[0]
            assert isinstance(target, Immediate)
            return target.value
        return None

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in reversed(self.operands))
        return f"{self.mnemonic} {ops}".strip()
