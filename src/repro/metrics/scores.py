"""Precision / recall / F1 against ground truth (§5.1, §5.2, Table 1).

Conventions match the paper:

* **false negative** — syscall in the ground truth (observed at runtime)
  but missed by the analysis: breaks applications, the disqualifying
  failure;
* **false positive** — syscall identified but never observed: reduces
  filter strictness;
* recall = TP / (TP + FN); precision = TP / (TP + FP);
  F1 = harmonic mean.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Score:
    """Comparison of one identified set against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def is_valid(self) -> bool:
        """Paper's validity criterion: zero false negatives."""
        return self.false_negatives == 0


def score(identified: set[int], ground_truth: set[int]) -> Score:
    """Score an identified syscall set against an observed ground truth."""
    return Score(
        true_positives=len(identified & ground_truth),
        false_positives=len(identified - ground_truth),
        false_negatives=len(ground_truth - identified),
    )


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def histogram(counts: list[int], bin_width: int = 10, top: int = 280) -> dict[int, int]:
    """Frequency histogram of per-binary identified-set sizes (Figure 8)."""
    bins: dict[int, int] = {}
    for count in counts:
        bin_start = min(count // bin_width * bin_width, top)
        bins[bin_start] = bins.get(bin_start, 0) + 1
    return dict(sorted(bins.items()))
