"""Evaluation metrics: precision/recall/F1 and distribution helpers."""

from .scores import Score, histogram, mean, score

__all__ = ["Score", "score", "mean", "histogram"]
