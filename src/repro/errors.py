"""Shared exception hierarchy for the B-Side reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EncodeError(ReproError):
    """An instruction could not be encoded to machine code."""


class DecodeError(ReproError):
    """A byte sequence could not be decoded to an instruction."""

    def __init__(self, message: str, addr: int | None = None):
        super().__init__(message if addr is None else f"{message} @ {addr:#x}")
        self.addr = addr


class AsmError(ReproError):
    """The assembler was used inconsistently (e.g. unknown label)."""


class ElfError(ReproError):
    """An ELF image is malformed or unsupported."""


class LoaderError(ReproError):
    """A binary or one of its library dependencies could not be loaded."""


class CfgError(ReproError):
    """Control-flow graph recovery failed."""


class SymexError(ReproError):
    """The symbolic execution engine hit an unsupported construct."""


class BudgetExceeded(ReproError):
    """An analysis step budget was exhausted (stands in for a timeout).

    The paper's evaluation (§5.2) reports per-binary analysis timeouts; the
    reproduction uses deterministic step budgets so that "timeouts" are
    reproducible across machines.
    """

    def __init__(self, stage: str, budget: int):
        super().__init__(f"analysis budget exceeded in stage '{stage}' ({budget} steps)")
        self.stage = stage
        self.budget = budget


class AnalysisFailure(ReproError):
    """A system-call identification tool declared failure on a binary."""

    def __init__(self, tool: str, reason: str):
        super().__init__(f"{tool}: {reason}")
        self.tool = tool
        self.reason = reason


class EmulationError(ReproError):
    """The concrete emulator encountered an illegal state."""


class FilterViolation(ReproError):
    """A seccomp-like filter killed the emulated process (false negative)."""

    def __init__(self, sysno: int, name: str):
        super().__init__(f"filter violation: syscall {sysno} ({name}) not allowed")
        self.sysno = sysno
        self.name = name
