"""ELF64 image writer.

Builds executables (``ET_EXEC`` for non-PIC static, ``ET_DYN`` for
PIE/dynamic) and shared objects with:

* two PT_LOAD segments (text RX, data RW),
* a full ``.symtab`` (function/object symbols),
* for dynamic objects a ``.dynsym``/``.dynstr`` with exported and imported
  (undefined) symbols, ``DT_NEEDED`` entries, and ``.rela.got`` relocations
  binding GOT slots to imported symbols.

Addresses are decided by the caller; the writer enforces page-aligned
segment bases so that file offsets stay congruent with virtual addresses,
as real loaders require.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ElfError
from . import structs as s


@dataclass(frozen=True, slots=True)
class SymbolSpec:
    """A symbol to be written to the image.

    ``value == 0 and not defined`` denotes an import (undefined dynamic
    symbol).  ``exported`` controls presence in ``.dynsym``.
    """

    name: str
    value: int = 0
    size: int = 0
    kind: str = "func"  # "func" | "object" | "notype"
    binding: str = "global"  # "global" | "local"
    defined: bool = True
    exported: bool = False


@dataclass(frozen=True, slots=True)
class RelocSpec:
    """A GOT-slot relocation: the loader writes ``symbol``'s address at ``got_addr``."""

    got_addr: int
    symbol: str
    kind: int = s.R_X86_64_JUMP_SLOT


@dataclass(slots=True)
class ElfImageSpec:
    """Everything needed to serialise one ELF image."""

    elf_type: int  # ET_EXEC or ET_DYN
    text_vaddr: int
    text: bytes
    data_vaddr: int = 0
    data: bytes = b""
    entry: int = 0
    soname: str = ""
    needed: list[str] = field(default_factory=list)
    symbols: list[SymbolSpec] = field(default_factory=list)
    relocations: list[RelocSpec] = field(default_factory=list)
    #: emit a .eh_frame section (stack unwinding metadata).  Tools that
    #: recover disassembly from unwind info (SysFilter §3) require it.
    has_eh_frame: bool = True

    @property
    def is_dynamic(self) -> bool:
        return bool(self.needed or self.soname or self.relocations
                    or any(not sym.defined for sym in self.symbols))


_KIND_TO_STT = {"func": s.STT_FUNC, "object": s.STT_OBJECT, "notype": s.STT_NOTYPE}
_BIND_TO_STB = {"global": s.STB_GLOBAL, "local": s.STB_LOCAL}


def write_elf(spec: ElfImageSpec) -> bytes:
    """Serialise ``spec`` into ELF64 bytes."""
    if spec.text_vaddr % s.PAGE:
        raise ElfError(f"text vaddr {spec.text_vaddr:#x} is not page-aligned")
    if spec.data and spec.data_vaddr % s.PAGE:
        raise ElfError(f"data vaddr {spec.data_vaddr:#x} is not page-aligned")
    if spec.data and spec.data_vaddr < spec.text_vaddr + len(spec.text):
        raise ElfError("data segment overlaps text segment")

    shstr = s.StringTable()
    strtab = s.StringTable()
    dynstr = s.StringTable()

    # ---- layout of file offsets ---------------------------------------
    text_off = s.PAGE
    data_off = s.page_align(text_off + len(spec.text)) if spec.data else 0
    tail_off = (data_off + len(spec.data)) if spec.data else (text_off + len(spec.text))

    blobs: list[tuple[str, int, bytes, dict]] = []  # (name, offset, data, shdr kwargs)

    # ---- .symtab --------------------------------------------------------
    sym_entries = [s.pack_sym(0, 0, 0, 0, 0)]
    local_syms = [x for x in spec.symbols if x.binding == "local"]
    global_syms = [x for x in spec.symbols if x.binding != "local"]
    for sym in local_syms + global_syms:
        info = (_BIND_TO_STB[sym.binding] << 4) | _KIND_TO_STT[sym.kind]
        shndx = 1 if sym.defined else 0  # 1 = .text (index fixed below)
        sym_entries.append(s.pack_sym(strtab.add(sym.name), sym.value, sym.size, info, shndx))
    symtab_blob = b"".join(sym_entries)
    symtab_info = 1 + len(local_syms)  # index of first global

    # ---- .dynsym / relocations / .dynamic -------------------------------
    dynsym_blob = b""
    rela_blob = b""
    dynamic_blob = b""
    dyn_exports = [x for x in spec.symbols if x.exported and x.defined]
    dyn_imports = [x for x in spec.symbols if not x.defined]
    dynsym_index: dict[str, int] = {}
    if spec.is_dynamic:
        entries = [s.pack_sym(0, 0, 0, 0, 0)]
        index = 1
        for sym in dyn_imports + dyn_exports:
            info = (s.STB_GLOBAL << 4) | _KIND_TO_STT[sym.kind]
            shndx = 1 if sym.defined else 0
            entries.append(s.pack_sym(dynstr.add(sym.name), sym.value, sym.size, info, shndx))
            dynsym_index[sym.name] = index
            index += 1
        dynsym_blob = b"".join(entries)

        rela_entries = []
        for rel in spec.relocations:
            if rel.symbol not in dynsym_index:
                raise ElfError(f"relocation against unknown dynamic symbol {rel.symbol!r}")
            rela_entries.append(s.pack_rela(rel.got_addr, dynsym_index[rel.symbol], rel.kind))
        rela_blob = b"".join(rela_entries)

        dyn_entries = [s.pack_dyn(s.DT_NEEDED, dynstr.add(lib)) for lib in spec.needed]
        if spec.soname:
            dyn_entries.append(s.pack_dyn(s.DT_SONAME, dynstr.add(spec.soname)))
        dyn_entries.append(s.pack_dyn(s.DT_NULL, 0))
        dynamic_blob = b"".join(dyn_entries)

    # ---- section table assembly ----------------------------------------
    # Section indices: 0 NULL, 1 .text, (2 .data), then tail sections.
    sections: list[bytes] = [s.pack_shdr(0, s.SHT_NULL, 0, 0, 0, 0)]
    shstr.add(".text")
    sections.append(s.pack_shdr(
        shstr.add(".text"), s.SHT_PROGBITS, s.SHF_ALLOC | s.SHF_EXECINSTR,
        spec.text_vaddr, text_off, len(spec.text), align=16,
    ))
    if spec.data:
        sections.append(s.pack_shdr(
            shstr.add(".data"), s.SHT_PROGBITS, s.SHF_ALLOC | s.SHF_WRITE,
            spec.data_vaddr, data_off, len(spec.data), align=8,
        ))

    offset = tail_off

    def add_tail(name: str, sh_type: int, blob: bytes, **kw) -> int:
        nonlocal offset
        idx = len(sections)
        sections.append(s.pack_shdr(shstr.add(name), sh_type, 0, 0, offset, len(blob), **kw))
        blobs.append((name, offset, blob, {}))
        offset += len(blob)
        return idx

    if spec.has_eh_frame:
        # A minimal CIE-terminator-only .eh_frame: enough for consumers
        # that merely check unwind metadata presence.
        add_tail(".eh_frame", s.SHT_PROGBITS, b"\x00" * 4, align=8)

    strtab_blob_final = strtab.bytes()
    # .symtab links to .strtab; the index is only known after adding both,
    # so the .symtab header is patched afterwards.
    symtab_off = offset
    symtab_idx = add_tail(".symtab", s.SHT_SYMTAB, symtab_blob,
                          link=0, info=symtab_info, entsize=s.SYM_SIZE, align=8)
    strtab_idx = add_tail(".strtab", s.SHT_STRTAB, strtab_blob_final)
    sections[symtab_idx] = s.pack_shdr(
        shstr.add(".symtab"), s.SHT_SYMTAB, 0, 0,
        symtab_off, len(symtab_blob), link=strtab_idx, info=symtab_info,
        entsize=s.SYM_SIZE, align=8,
    )

    if spec.is_dynamic:
        dynsym_off = offset
        dynsym_idx = add_tail(".dynsym", s.SHT_DYNSYM, dynsym_blob,
                              info=1, entsize=s.SYM_SIZE, align=8)
        dynstr_blob = dynstr.bytes()
        dynstr_idx = add_tail(".dynstr", s.SHT_STRTAB, dynstr_blob)
        sections[dynsym_idx] = s.pack_shdr(
            shstr.add(".dynsym"), s.SHT_DYNSYM, 0, 0, dynsym_off,
            len(dynsym_blob), link=dynstr_idx, info=1, entsize=s.SYM_SIZE, align=8,
        )
        if rela_blob:
            rela_off = offset
            rela_idx = add_tail(".rela.got", s.SHT_RELA, rela_blob,
                                entsize=s.RELA_SIZE, align=8)
            sections[rela_idx] = s.pack_shdr(
                shstr.add(".rela.got"), s.SHT_RELA, 0, 0, rela_off,
                len(rela_blob), link=dynsym_idx, entsize=s.RELA_SIZE, align=8,
            )
        if dynamic_blob:
            dynamic_off = offset
            dynamic_idx = add_tail(".dynamic", s.SHT_DYNAMIC, dynamic_blob,
                                   entsize=s.DYN_SIZE, align=8)
            sections[dynamic_idx] = s.pack_shdr(
                shstr.add(".dynamic"), s.SHT_DYNAMIC, 0, 0, dynamic_off,
                len(dynamic_blob), link=dynstr_idx, entsize=s.DYN_SIZE, align=8,
            )

    shstrtab_off = offset
    shstrtab_idx = len(sections)
    shstr.add(".shstrtab")
    shstrtab_blob = shstr.bytes()
    sections.append(s.pack_shdr(
        shstr._offsets[".shstrtab"], s.SHT_STRTAB, 0, 0, shstrtab_off, len(shstrtab_blob),
    ))
    blobs.append((".shstrtab", shstrtab_off, shstrtab_blob, {}))
    offset += len(shstrtab_blob)

    shoff = (offset + 7) & ~7

    # ---- program headers -------------------------------------------------
    phdrs = [s.pack_phdr(s.PT_LOAD, s.PF_R | s.PF_X, text_off, spec.text_vaddr,
                         len(spec.text), len(spec.text))]
    if spec.data:
        phdrs.append(s.pack_phdr(s.PT_LOAD, s.PF_R | s.PF_W, data_off, spec.data_vaddr,
                                 len(spec.data), len(spec.data)))
    phdr_blob = b"".join(phdrs)
    if s.EHDR_SIZE + len(phdr_blob) > s.PAGE:
        raise ElfError("program header table does not fit before .text")

    # ---- final assembly --------------------------------------------------
    out = bytearray(shoff + len(sections) * s.SHDR_SIZE)
    ehdr = s.pack_ehdr(spec.elf_type, spec.entry, s.EHDR_SIZE, shoff,
                       len(phdrs), len(sections), shstrtab_idx)
    out[0:len(ehdr)] = ehdr
    out[s.EHDR_SIZE:s.EHDR_SIZE + len(phdr_blob)] = phdr_blob
    out[text_off:text_off + len(spec.text)] = spec.text
    if spec.data:
        out[data_off:data_off + len(spec.data)] = spec.data
    for __, off, blob, __kw in blobs:
        out[off:off + len(blob)] = blob
    pos = shoff
    for shdr in sections:
        out[pos:pos + s.SHDR_SIZE] = shdr
        pos += s.SHDR_SIZE
    return bytes(out)
