"""ELF64 image reader.

Parses the images produced by :mod:`repro.elf.writer` (and any ELF64 binary
restricted to the same feature set) back into a structured form consumed by
the loader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ElfError
from . import structs as s


@dataclass(frozen=True, slots=True)
class Symbol:
    """A parsed ELF symbol."""

    name: str
    value: int
    size: int
    kind: str
    binding: str
    defined: bool
    exported: bool = False

    @property
    def is_function(self) -> bool:
        return self.kind == "func"


@dataclass(frozen=True, slots=True)
class Segment:
    """A loadable segment."""

    vaddr: int
    data: bytes
    flags: int

    @property
    def executable(self) -> bool:
        return bool(self.flags & s.PF_X)

    @property
    def writable(self) -> bool:
        return bool(self.flags & s.PF_W)

    @property
    def end(self) -> int:
        return self.vaddr + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.vaddr <= addr < self.end


@dataclass(slots=True)
class ElfFile:
    """A parsed ELF image."""

    elf_type: int
    entry: int
    segments: list[Segment]
    symbols: list[Symbol] = field(default_factory=list)
    dynamic_symbols: list[Symbol] = field(default_factory=list)
    needed: list[str] = field(default_factory=list)
    soname: str = ""
    relocations: dict[int, str] = field(default_factory=dict)  # got addr -> symbol
    section_names: frozenset[str] = frozenset()

    @property
    def is_pic(self) -> bool:
        return self.elf_type == s.ET_DYN

    @property
    def text(self) -> Segment:
        for seg in self.segments:
            if seg.executable:
                return seg
        raise ElfError("image has no executable segment")

    @property
    def data_segment(self) -> Segment | None:
        for seg in self.segments:
            if seg.writable:
                return seg
        return None

    def segment_containing(self, addr: int) -> Segment | None:
        for seg in self.segments:
            if seg.contains(addr):
                return seg
        return None

    def read_mem(self, addr: int, size: int) -> bytes:
        seg = self.segment_containing(addr)
        if seg is None or addr + size > seg.end:
            raise ElfError(f"address {addr:#x}+{size} not mapped in image")
        off = addr - seg.vaddr
        return seg.data[off:off + size]


_STT_TO_KIND = {s.STT_FUNC: "func", s.STT_OBJECT: "object", s.STT_NOTYPE: "notype"}
_STB_TO_BIND = {s.STB_GLOBAL: "global", s.STB_LOCAL: "local"}


def read_elf(data: bytes) -> ElfFile:
    """Parse ELF64 bytes into an :class:`ElfFile`."""
    if data[:4] != s.ELF_MAGIC:
        raise ElfError("bad ELF magic")
    ehdr = s.unpack_ehdr(data)
    if ehdr["machine"] != s.EM_X86_64:
        raise ElfError(f"unsupported machine {ehdr['machine']}")

    segments = []
    for i in range(ehdr["phnum"]):
        phdr = s.unpack_phdr(data, ehdr["phoff"] + i * s.PHDR_SIZE)
        if phdr["type"] != s.PT_LOAD:
            continue
        raw = data[phdr["offset"]:phdr["offset"] + phdr["filesz"]]
        if phdr["memsz"] > phdr["filesz"]:
            raw += b"\x00" * (phdr["memsz"] - phdr["filesz"])
        segments.append(Segment(phdr["vaddr"], raw, phdr["flags"]))

    shdrs = [s.unpack_shdr(data, ehdr["shoff"] + i * s.SHDR_SIZE)
             for i in range(ehdr["shnum"])]
    if not shdrs:
        return ElfFile(ehdr["type"], ehdr["entry"], segments)

    shstr_hdr = shdrs[ehdr["shstrndx"]]
    shstr_blob = data[shstr_hdr["offset"]:shstr_hdr["offset"] + shstr_hdr["size"]]

    def section_name(hdr: dict) -> str:
        return s.StringTable.read(shstr_blob, hdr["name"])

    def section_blob(hdr: dict) -> bytes:
        return data[hdr["offset"]:hdr["offset"] + hdr["size"]]

    by_name = {section_name(h): h for h in shdrs[1:]}

    def parse_symbols(tab_name: str, str_name: str, exported: bool) -> list[Symbol]:
        if tab_name not in by_name:
            return []
        tab = section_blob(by_name[tab_name])
        strs = section_blob(by_name[str_name])
        out = []
        for off in range(s.SYM_SIZE, len(tab), s.SYM_SIZE):  # skip null entry
            raw = s.unpack_sym(tab, off)
            name = s.StringTable.read(strs, raw["name"])
            if not name:
                continue
            out.append(Symbol(
                name=name,
                value=raw["value"],
                size=raw["size"],
                kind=_STT_TO_KIND.get(raw["type"], "notype"),
                binding=_STB_TO_BIND.get(raw["bind"], "global"),
                defined=raw["shndx"] != 0,
                exported=exported,
            ))
        return out

    symbols = parse_symbols(".symtab", ".strtab", exported=False)
    dynamic_symbols = parse_symbols(".dynsym", ".dynstr", exported=True)

    needed: list[str] = []
    soname = ""
    if ".dynamic" in by_name and ".dynstr" in by_name:
        dyn = section_blob(by_name[".dynamic"])
        dynstr = section_blob(by_name[".dynstr"])
        for off in range(0, len(dyn), s.DYN_SIZE):
            tag, value = s.unpack_dyn(dyn, off)
            if tag == s.DT_NULL:
                break
            if tag == s.DT_NEEDED:
                needed.append(s.StringTable.read(dynstr, value))
            elif tag == s.DT_SONAME:
                soname = s.StringTable.read(dynstr, value)

    relocations: dict[int, str] = {}
    if ".rela.got" in by_name and dynamic_symbols:
        rela = section_blob(by_name[".rela.got"])
        # Re-read .dynsym in table order (parse_symbols skips the null entry,
        # so dynamic symbol index N maps to list index N-1).
        for off in range(0, len(rela), s.RELA_SIZE):
            entry = s.unpack_rela(rela, off)
            sym_index = entry["sym"]
            if not 1 <= sym_index <= len(dynamic_symbols):
                raise ElfError(f"relocation references bad symbol index {sym_index}")
            relocations[entry["offset"]] = dynamic_symbols[sym_index - 1].name

    return ElfFile(
        elf_type=ehdr["type"],
        entry=ehdr["entry"],
        segments=segments,
        symbols=symbols,
        dynamic_symbols=dynamic_symbols,
        needed=needed,
        soname=soname,
        relocations=relocations,
        section_names=frozenset(by_name),
    )
