"""ELF64 constants and fixed-size structure packing.

Only the structures the toolchain emits are modelled, but they are emitted
with genuine ELF64 layouts so that the reader (and any curious ``readelf``)
can parse them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1

# e_type
ET_EXEC = 2
ET_DYN = 3

EM_X86_64 = 62

# p_type
PT_LOAD = 1
PT_DYNAMIC = 2

# p_flags
PF_X = 1
PF_W = 2
PF_R = 4

# sh_type
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_DYNAMIC = 6
SHT_NOBITS = 8
SHT_DYNSYM = 11

# sh_flags
SHF_WRITE = 1
SHF_ALLOC = 2
SHF_EXECINSTR = 4

# symbol binding / type
STB_LOCAL = 0
STB_GLOBAL = 1
STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2

# dynamic tags
DT_NULL = 0
DT_NEEDED = 1
DT_SONAME = 14

# relocation types
R_X86_64_GLOB_DAT = 6
R_X86_64_JUMP_SLOT = 7

PAGE = 0x1000

EHDR_SIZE = 64
PHDR_SIZE = 56
SHDR_SIZE = 64
SYM_SIZE = 24
RELA_SIZE = 24
DYN_SIZE = 16

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_SHDR = struct.Struct("<IIQQQQIIQQ")
_SYM = struct.Struct("<IBBHQQ")
_RELA = struct.Struct("<QQq")
_DYN = struct.Struct("<qQ")


def pack_ehdr(
    e_type: int,
    entry: int,
    phoff: int,
    shoff: int,
    phnum: int,
    shnum: int,
    shstrndx: int,
) -> bytes:
    ident = ELF_MAGIC + bytes([ELFCLASS64, ELFDATA2LSB, EV_CURRENT]) + b"\x00" * 9
    return _EHDR.pack(
        ident, e_type, EM_X86_64, EV_CURRENT, entry, phoff, shoff,
        0, EHDR_SIZE, PHDR_SIZE, phnum, SHDR_SIZE, shnum, shstrndx,
    )


def unpack_ehdr(data: bytes) -> dict:
    (ident, e_type, machine, version, entry, phoff, shoff,
     flags, ehsize, phentsize, phnum, shentsize, shnum, shstrndx) = _EHDR.unpack_from(data, 0)
    return {
        "ident": ident, "type": e_type, "machine": machine, "entry": entry,
        "phoff": phoff, "shoff": shoff, "phnum": phnum, "shnum": shnum,
        "shstrndx": shstrndx, "phentsize": phentsize, "shentsize": shentsize,
    }


def pack_phdr(p_type: int, flags: int, offset: int, vaddr: int, filesz: int, memsz: int,
              align: int = PAGE) -> bytes:
    return _PHDR.pack(p_type, flags, offset, vaddr, vaddr, filesz, memsz, align)


def unpack_phdr(data: bytes, off: int) -> dict:
    p_type, flags, offset, vaddr, paddr, filesz, memsz, align = _PHDR.unpack_from(data, off)
    return {
        "type": p_type, "flags": flags, "offset": offset, "vaddr": vaddr,
        "filesz": filesz, "memsz": memsz, "align": align,
    }


def pack_shdr(name_off: int, sh_type: int, flags: int, addr: int, offset: int,
              size: int, link: int = 0, info: int = 0, align: int = 1,
              entsize: int = 0) -> bytes:
    return _SHDR.pack(name_off, sh_type, flags, addr, offset, size, link, info, align, entsize)


def unpack_shdr(data: bytes, off: int) -> dict:
    name, sh_type, flags, addr, offset, size, link, info, align, entsize = \
        _SHDR.unpack_from(data, off)
    return {
        "name": name, "type": sh_type, "flags": flags, "addr": addr,
        "offset": offset, "size": size, "link": link, "info": info,
        "entsize": entsize,
    }


def pack_sym(name_off: int, value: int, size: int, info: int, shndx: int) -> bytes:
    return _SYM.pack(name_off, info, 0, shndx, value, size)


def unpack_sym(data: bytes, off: int) -> dict:
    name, info, other, shndx, value, size = _SYM.unpack_from(data, off)
    return {
        "name": name, "info": info, "shndx": shndx, "value": value, "size": size,
        "bind": info >> 4, "type": info & 0xF,
    }


def pack_rela(offset: int, sym_index: int, r_type: int, addend: int = 0) -> bytes:
    return _RELA.pack(offset, (sym_index << 32) | r_type, addend)


def unpack_rela(data: bytes, off: int) -> dict:
    offset, info, addend = _RELA.unpack_from(data, off)
    return {"offset": offset, "sym": info >> 32, "type": info & 0xFFFFFFFF, "addend": addend}


def pack_dyn(tag: int, value: int) -> bytes:
    return _DYN.pack(tag, value)


def unpack_dyn(data: bytes, off: int) -> tuple[int, int]:
    return _DYN.unpack_from(data, off)


class StringTable:
    """An incrementally-built ELF string table."""

    __slots__ = ("blob", "_offsets")

    def __init__(self) -> None:
        self.blob = bytearray(b"\x00")
        self._offsets: dict[str, int] = {"": 0}

    def add(self, s: str) -> int:
        if s in self._offsets:
            return self._offsets[s]
        off = len(self.blob)
        self.blob += s.encode() + b"\x00"
        self._offsets[s] = off
        return off

    def get(self, off: int) -> str:
        end = self.blob.index(b"\x00", off)
        return self.blob[off:end].decode()

    @staticmethod
    def read(blob: bytes, off: int) -> str:
        end = blob.index(b"\x00", off)
        return blob[off:end].decode()

    def bytes(self) -> bytes:
        return bytes(self.blob)


def page_align(value: int) -> int:
    """Round up to the next page boundary."""
    return (value + PAGE - 1) & ~(PAGE - 1)
