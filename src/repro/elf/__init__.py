"""Minimal-but-real ELF64 writer/reader used by the corpus and the loader."""

from .reader import ElfFile, Segment, Symbol, read_elf
from .structs import ET_DYN, ET_EXEC, PAGE, page_align
from .writer import ElfImageSpec, RelocSpec, SymbolSpec, write_elf

__all__ = [
    "ElfFile",
    "Segment",
    "Symbol",
    "read_elf",
    "ElfImageSpec",
    "RelocSpec",
    "SymbolSpec",
    "write_elf",
    "ET_DYN",
    "ET_EXEC",
    "PAGE",
    "page_align",
]
