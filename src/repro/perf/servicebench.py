"""The service-scale workload: the distributed tier over real sockets.

Where :mod:`repro.perf.coldbench` measures the analysis *kernel*, this
module measures the *service tier* around it: the asyncio front end,
the lease-claiming worker processes, and the sharded artifact store,
exercised end to end over localhost HTTP — every request crosses the
socket, the queue directory, and a worker process boundary, exactly
like production traffic.

One measurement (:func:`measure_service_scale`) sweeps worker tiers
(1 / 2 / 4 processes by default).  Per tier:

* **cold phase** — a set of distinct binaries is submitted against an
  empty cache; cold throughput is the fleet-build rate the paper's
  §6 deployment story depends on;
* **warm phase** — concurrent client threads resubmit the same
  binaries at increasing concurrency levels; per-job latency
  (submit → terminal, polled) yields p50/p99, and the level where
  throughput stops improving is the tier's **saturation point**.

The acceptance ratio follows the precedent set by
``benchmarks/bench_service_throughput.py``: the max-tier *steady-state*
(warm) throughput is compared against the 1-worker *cold* throughput —
the steady state a long-running daemon converges to vs the worst-case
single-worker build-out.  Cold-vs-cold scaling across tiers is recorded
but only informational: on a single-core runner it is
batching-amortisation only.

Cross-machine comparability mirrors the cold bench: every gated number
is normalized by the in-run pure-Python calibration loop
(:func:`repro.perf.coldbench._calibrate`), so a trajectory entry
recorded on one machine still gates another.
"""

from __future__ import annotations

import math
import os
import platform
import shutil
import tempfile
import threading
import time

from .coldbench import _calibrate
from .trajectory import SERVICE_WORKLOAD

#: default worker-process tiers swept by one measurement
DEFAULT_TIERS = (1, 2, 4)

#: default concurrent-client ramp for the warm phase
DEFAULT_CLIENTS_RAMP = (4, 8, 16)


def _build_binaries(outdir: str, count: int) -> list[str]:
    """Write ``count`` byte-distinct demo binaries (no dedup between them)."""
    from ..corpus import ProgramBuilder
    from ..x86 import EAX, RDI

    # a pool of real syscall numbers; each binary gets a distinct slice
    pool = (0, 1, 2, 3, 4, 5, 9, 12, 21, 39, 41, 42, 57, 59, 79, 89)
    os.makedirs(outdir, exist_ok=True)
    paths = []
    for index in range(count):
        name = f"scale-{index:03d}"
        p = ProgramBuilder(name)
        with p.function("_start"):
            for offset in range(3):
                p.asm.mov(EAX, pool[(index * 3 + offset) % len(pool)])
                p.asm.syscall()
            p.asm.mov(EAX, 60)
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        path = os.path.join(outdir, name)
        p.build().save(path)
        paths.append(path)
    return paths


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _run_warm_level(url: str, paths: list[str], clients: int,
                    jobs_per_client: int) -> dict:
    """Drive one concurrency level; returns throughput + latency stats."""
    from ..service import ServiceClient

    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_main(worker_index: int) -> None:
        client = ServiceClient(url, timeout=120.0, retries=5, backoff=0.05)
        barrier.wait()
        local: list[float] = []
        try:
            for j in range(jobs_per_client):
                path = paths[(worker_index + j) % len(paths)]
                t0 = time.perf_counter()
                job = client.submit_path(path)
                done = client.wait(job["id"], timeout=120.0, poll=0.01)
                local.append(time.perf_counter() - t0)
                if done["status"] != "done":
                    raise RuntimeError(
                        f"job {job['id']} ended {done['status']}: "
                        f"{done.get('error', '')}"
                    )
        except Exception as error:  # surfaced to the caller below
            with lock:
                errors.append(f"client {worker_index}: {error}")
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client_main, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise RuntimeError(
            f"warm level with {clients} clients failed: {errors[0]}"
        )
    total = clients * jobs_per_client
    return {
        "clients": clients,
        "jobs": total,
        "seconds": round(elapsed, 6),
        "throughput_rps": round(total / elapsed, 3),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        # raw samples for envelope-wide pooling; popped before the
        # level record is persisted into the trajectory
        "latencies": latencies,
    }


def _saturation_clients(levels: list[dict], gain: float = 0.10) -> int:
    """The client count past which throughput stops improving by >gain."""
    if not levels:
        return 0
    for previous, level in zip(levels, levels[1:]):
        if level["throughput_rps"] < previous["throughput_rps"] * (1 + gain):
            return previous["clients"]
    return levels[-1]["clients"]


def measure_service_scale(
    *,
    tiers: tuple[int, ...] = DEFAULT_TIERS,
    n_binaries: int = 8,
    clients_ramp: tuple[int, ...] = DEFAULT_CLIENTS_RAMP,
    jobs_per_client: int = 4,
    shards: int = 2,
    lease_ttl: float = 30.0,
    warm_passes: int = 2,
    workdir: str | None = None,
) -> dict:
    """Run the full sweep and return one trajectory record.

    ``warm_passes`` repeats the warm client ramp per tier; the gate's
    reference envelope spans every pass, so a transient stall during
    one pass cannot masquerade as a latency regression.  Warm levels
    take seconds each, so extra passes are cheap next to the cold
    phase and worker spawns.
    """
    from ..service import AnalysisService, AsyncServiceServer, ServiceClient, spawn_workers

    # The machine-speed probe is sampled before *every* tier, not once:
    # on burstable/frequency-scaling hosts the speed drifts over the
    # minutes a sweep takes, and both gated numbers are ratios with the
    # calibration as denominator — a single unrepresentative sample
    # masquerades as a 20%+ regression.  The median sample normalizes.
    calibrations = [_calibrate()]
    root = workdir or tempfile.mkdtemp(prefix="bside-scale-")
    owns_root = workdir is None
    binaries = _build_binaries(os.path.join(root, "bin"), n_binaries)

    tier_records: dict[str, dict] = {}
    pooled_latencies: list[float] = []
    pooled_jobs = 0
    pooled_seconds = 0.0
    try:
        for workers in tiers:
            calibrations.append(_calibrate())
            state = os.path.join(root, f"state-{workers}w")
            service = AnalysisService(
                state,
                shared=True,
                dispatcher=False,
                shards=shards,
                lease_ttl=lease_ttl,
                queue_size=max(
                    64, 2 * max(clients_ramp) * jobs_per_client,
                ),
            )
            service.write_config()
            server = AsyncServiceServer(service, port=0)
            server.start(executor=False)
            processes = spawn_workers(state, workers,
                                      overrides={"poll": 0.05})
            try:
                client = ServiceClient(server.url, timeout=120.0,
                                       retries=5, backoff=0.05)
                # -- cold phase: empty cache, every job a real analysis
                t0 = time.perf_counter()
                submitted = [client.submit_path(path) for path in binaries]
                for job in submitted:
                    done = client.wait(job["id"], timeout=300.0, poll=0.02)
                    if done["status"] != "done":
                        raise RuntimeError(
                            f"cold job {job['id']} ended {done['status']}: "
                            f"{done.get('error', '')}"
                        )
                cold_seconds = time.perf_counter() - t0
                cold_rps = len(binaries) / cold_seconds

                # -- warm phase: cache-served, ramped concurrency
                levels = [
                    _run_warm_level(server.url, binaries, clients,
                                    jobs_per_client)
                    for __ in range(max(1, warm_passes))
                    for clients in clients_ramp
                ]
            finally:
                for process in processes:
                    process.terminate()
                for process in processes:
                    process.join(5.0)
                server.stop()

            for lv in levels:
                pooled_latencies.extend(lv.pop("latencies"))
                pooled_jobs += lv["jobs"]
                pooled_seconds += lv["seconds"]
            best = max(levels, key=lambda lv: lv["throughput_rps"])
            tier_records[str(workers)] = {
                "cold_seconds": round(cold_seconds, 6),
                "cold_throughput_rps": round(cold_rps, 4),
                "warm_levels": levels,
                "warm_best_throughput_rps": best["throughput_rps"],
                "warm_p50_ms": best["p50_ms"],
                "warm_p99_ms": best["p99_ms"],
                # saturation wants one monotone ramp, not all passes
                "saturation_clients": _saturation_clients(
                    levels[:len(clients_ramp)]),
            }
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)

    calibration = sorted(calibrations)[len(calibrations) // 2]
    for doc in tier_records.values():
        doc["normalized_cold_throughput"] = round(
            doc["cold_throughput_rps"] * calibration, 6)
        doc["normalized_warm_throughput"] = round(
            doc["warm_best_throughput_rps"] * calibration, 6)
        doc["normalized_warm_p99"] = round(
            doc["warm_p99_ms"] / 1e3 / calibration, 4)

    low = str(min(tiers))
    high = str(max(tiers))
    scale = (
        tier_records[high]["warm_best_throughput_rps"]
        / tier_records[low]["cold_throughput_rps"]
    )
    cold_scale = (
        tier_records[high]["cold_throughput_rps"]
        / tier_records[low]["cold_throughput_rps"]
    )
    return {
        "workload": SERVICE_WORKLOAD,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "calibration_seconds": round(calibration, 6),
        "calibration_samples": [round(c, 6) for c in calibrations],
        "binaries": n_binaries,
        "jobs_per_client": jobs_per_client,
        "clients_ramp": list(clients_ramp),
        "shards": shards,
        "tiers": tier_records,
        #: the acceptance ratio: max-tier steady-state (warm) throughput
        #: vs single-worker cold throughput, both over real sockets
        "scale_warm_max_vs_cold_1w": round(scale, 3),
        #: informational on single-core runners (amortisation only)
        "cold_scaling_max_vs_1w": round(cold_scale, 3),
        #: the gate's regression reference, pooled over *every* warm
        #: submission in the run (all tiers x levels x passes, several
        #: hundred samples).  A per-level p99 over <=64 samples is the
        #: single worst job — scheduler roulette on a contended
        #: single-core runner — while the pooled p99 and the aggregate
        #: throughput are stable run to run, and a real server/client/
        #: queue regression still moves both.
        "reference": {
            "tier": high,
            "warm_samples": pooled_jobs,
            "normalized_warm_throughput": round(
                pooled_jobs / pooled_seconds * calibration, 6),
            "normalized_warm_p99": round(
                _percentile(pooled_latencies, 0.99) / calibration, 4),
        },
    }


def format_service_measurement(record: dict) -> str:
    """Human-readable table for one measurement (bench output, CLI)."""
    lines = [
        f"service scale [{record['workload']}] on {record['platform']}",
        f"python {record['python']} ({record['implementation']}), "
        f"{record['cpu_count']} cpu core(s), "
        f"{record['binaries']} distinct binaries, shards={record['shards']}",
        "",
        f"{'tier':<6} {'cold s':>8} {'cold rps':>9} "
        f"{'warm rps':>9} {'p50 ms':>8} {'p99 ms':>8} {'sat@':>5}",
    ]
    for tier, doc in sorted(record["tiers"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"{tier + 'w':<6} {doc['cold_seconds']:>8.3f} "
            f"{doc['cold_throughput_rps']:>9.2f} "
            f"{doc['warm_best_throughput_rps']:>9.2f} "
            f"{doc['warm_p50_ms']:>8.2f} {doc['warm_p99_ms']:>8.2f} "
            f"{doc['saturation_clients']:>5}"
        )
    lines += [
        "",
        f"steady-state (warm, max tier) vs 1-worker cold: "
        f"{record['scale_warm_max_vs_cold_1w']:.1f}x",
        f"cold scaling max tier vs 1 worker: "
        f"{record['cold_scaling_max_vs_1w']:.2f}x (informational)",
        f"calibration {record['calibration_seconds']:.6f}s  ->  normalized "
        f"warm throughput {record['reference']['normalized_warm_throughput']:.4f}, "
        f"normalized p99 {record['reference']['normalized_warm_p99']:.4f}",
    ]
    return "\n".join(lines)
