"""Performance measurement subsystem.

The cold per-binary analysis kernel is this reproduction's Table-3 cost
story: B-Side's pitch is that static identification is cheap enough to
run at scale, so the cold path must be *measured*, not assumed.  This
package owns that measurement:

* :mod:`repro.perf.coldbench` — the cold-kernel workload: end-to-end
  cold analysis of the six §5.1 validation apps plus component
  micro-benchmarks (decode, CFG build, reachability, block lookup),
  normalised by an in-run pure-Python calibration loop so results
  compare across machines.
* :mod:`repro.perf.servicebench` — the service-scale workload: the
  asyncio front end, lease-claiming worker processes, and the sharded
  artifact store driven over real sockets at 1/2/4 workers (cold/warm
  throughput, p50/p99 latency, saturation point).
* :mod:`repro.perf.incbench` — the incremental-rebuild workload: a
  ~400-function binary mutated in 3 functions, re-analyzed through the
  function-granular ``funccfg`` cache (fraction of functions
  re-analyzed, cold/incremental equivalence and timings).
* :mod:`repro.perf.trajectory` — the append-only ``BENCH_*.json``
  trajectory files recording measurements across PRs, and the
  regression gates ``tools/perf_gate.py`` / ``tools/service_gate.py``
  / ``tools/incremental_gate.py`` enforce in CI.

See ``docs/performance.md`` for the workflow.
"""

from .coldbench import measure_cold_kernel
from .incbench import format_incremental_measurement, measure_incremental
from .servicebench import format_service_measurement, measure_service_scale
from .trajectory import (
    ACCURACY_PATH,
    ACCURACY_WORKLOAD,
    INCREMENTAL_PATH,
    INCREMENTAL_WORKLOAD,
    ROLE_ACCURACY,
    ROLE_INCREMENTAL,
    ROLE_SERVICE,
    SERVICE_PATH,
    SERVICE_WORKLOAD,
    Trajectory,
    gate_incremental_measurement,
    gate_measurement,
    gate_service_measurement,
    load_trajectory,
    save_trajectory,
)

__all__ = [
    "ACCURACY_PATH",
    "ACCURACY_WORKLOAD",
    "INCREMENTAL_PATH",
    "INCREMENTAL_WORKLOAD",
    "ROLE_ACCURACY",
    "ROLE_INCREMENTAL",
    "ROLE_SERVICE",
    "SERVICE_PATH",
    "SERVICE_WORKLOAD",
    "Trajectory",
    "format_incremental_measurement",
    "format_service_measurement",
    "gate_incremental_measurement",
    "gate_measurement",
    "gate_service_measurement",
    "load_trajectory",
    "measure_cold_kernel",
    "measure_incremental",
    "measure_service_scale",
    "save_trajectory",
]
