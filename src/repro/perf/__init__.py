"""Performance measurement subsystem.

The cold per-binary analysis kernel is this reproduction's Table-3 cost
story: B-Side's pitch is that static identification is cheap enough to
run at scale, so the cold path must be *measured*, not assumed.  This
package owns that measurement:

* :mod:`repro.perf.coldbench` — the cold-kernel workload: end-to-end
  cold analysis of the six §5.1 validation apps plus component
  micro-benchmarks (decode, CFG build, reachability, block lookup),
  normalised by an in-run pure-Python calibration loop so results
  compare across machines.
* :mod:`repro.perf.trajectory` — the ``BENCH_cold_kernel.json``
  trajectory file: an append-only record of measurements across PRs,
  and the regression/speedup gates ``tools/perf_gate.py`` enforces in
  CI.

See ``docs/performance.md`` for the workflow.
"""

from .coldbench import measure_cold_kernel
from .trajectory import (
    ACCURACY_PATH,
    ACCURACY_WORKLOAD,
    ROLE_ACCURACY,
    Trajectory,
    gate_measurement,
    load_trajectory,
    save_trajectory,
)

__all__ = [
    "ACCURACY_PATH",
    "ACCURACY_WORKLOAD",
    "ROLE_ACCURACY",
    "Trajectory",
    "gate_measurement",
    "load_trajectory",
    "measure_cold_kernel",
    "save_trajectory",
]
