"""Benchmark trajectories: append-only measurement histories + gates.

A *trajectory* is the append-only history of measurements across PRs::

    {"schema": 1, "workload": "cold-kernel-v1", "entries": [
        {"label": "pre-pr4-seed", "role": "pre-opt-baseline", ...},
        {"label": "pr4-optimized", "role": "optimized", ...}]}

Two trajectories are committed at the repository root:

* ``BENCH_cold_kernel.json`` (workload ``cold-kernel-v1``) — cold
  per-binary analysis wall time, gated by :func:`gate_measurement`
  below (``tools/perf_gate.py``);
* ``BENCH_eval_accuracy.json`` (workload ``eval-accuracy-v1``) — the
  paper's §5 accuracy reproduction (per-tool precision/recall/F1 over
  the validation apps + corpus completion), recorded by ``bside eval``
  and gated by :func:`repro.eval.gate.gate_accuracy`
  (``tools/accuracy_gate.py``);
* ``BENCH_service_scale.json`` (workload ``service-scale-v1``) — the
  distributed service tier under load (cold/warm throughput, p50/p99
  latency, and saturation point at 1/2/4 worker processes over real
  sockets; :mod:`repro.perf.servicebench`), gated by
  :func:`gate_service_measurement` below (``tools/service_gate.py``);
* ``BENCH_incremental.json`` (workload ``incremental-v1``) — rebuild
  locality of the function-granular incremental pipeline (fraction of
  functions re-analyzed after a 3-of-~400-function mutation, plus
  cold/incremental equivalence; :mod:`repro.perf.incbench`), gated by
  :func:`gate_incremental_measurement` below
  (``tools/incremental_gate.py``).

All share this module's schema, file format, and load/append/save
machinery; only the per-entry record shape and the gate differ.

Each entry is one :func:`repro.perf.coldbench.measure_cold_kernel`
record plus a ``label`` and a ``role``:

* ``pre-opt-baseline`` — the kernel *before* the PR-4 optimisation
  work; the ≥3x speedup acceptance target is measured against the
  first such entry.
* ``optimized`` — every later measurement; the regression gate
  compares against the **last** entry, whatever its role.

Gates compare ``normalized_cold`` (cold seconds divided by the in-run
calibration loop), so a baseline recorded on a developer laptop still
gates a CI container: machine speed cancels out of the ratio.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

SCHEMA = 1

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))

#: default cold-kernel trajectory location: the repository root
DEFAULT_PATH = os.path.join(_REPO_ROOT, "BENCH_cold_kernel.json")

#: the accuracy trajectory (``bside eval`` / ``tools/accuracy_gate.py``)
ACCURACY_PATH = os.path.join(_REPO_ROOT, "BENCH_eval_accuracy.json")
ACCURACY_WORKLOAD = "eval-accuracy-v1"

#: the service-scale trajectory (``benchmarks/bench_service_scale.py`` /
#: ``tools/service_gate.py``)
SERVICE_PATH = os.path.join(_REPO_ROOT, "BENCH_service_scale.json")
SERVICE_WORKLOAD = "service-scale-v1"

#: the incremental-rebuild trajectory (``benchmarks/bench_incremental.py``
#: / ``tools/incremental_gate.py``)
INCREMENTAL_PATH = os.path.join(_REPO_ROOT, "BENCH_incremental.json")
INCREMENTAL_WORKLOAD = "incremental-v1"

ROLE_PRE = "pre-opt-baseline"
ROLE_OPTIMIZED = "optimized"
#: role of every accuracy-trajectory entry
ROLE_ACCURACY = "accuracy"
#: role of every service-scale entry
ROLE_SERVICE = "service-scale"
#: role of every incremental-rebuild entry
ROLE_INCREMENTAL = "incremental"


@dataclass
class Trajectory:
    """Parsed trajectory file."""

    entries: list[dict] = field(default_factory=list)
    workload: str = "cold-kernel-v1"

    @property
    def baseline(self) -> dict | None:
        """The entry the regression gate compares against (the latest)."""
        return self.entries[-1] if self.entries else None

    @property
    def pre_optimization(self) -> dict | None:
        """The pre-PR-4 kernel entry (speedup target anchor)."""
        for entry in self.entries:
            if entry.get("role") == ROLE_PRE:
                return entry
        return None

    def append(self, record: dict, label: str, role: str = ROLE_OPTIMIZED) -> dict:
        entry = dict(record)
        entry["label"] = label
        entry["role"] = role
        self.entries.append(entry)
        return entry

    def to_doc(self) -> dict:
        return {
            "schema": SCHEMA,
            "workload": self.workload,
            "entries": self.entries,
        }


def load_trajectory(
    path: str = DEFAULT_PATH, workload: str | None = None,
) -> Trajectory:
    """Load a trajectory file; an absent file is an empty trajectory.

    ``workload`` names the trajectory the caller expects: it labels a
    freshly-created (absent-file) trajectory and is *validated* against
    an existing file — appending accuracy records to the cold-kernel
    file (or vice versa) would poison the other gate's baseline, so a
    mismatch raises instead.  ``None`` accepts any workload
    (introspection-only callers).
    """
    if not os.path.exists(path):
        return Trajectory(workload=workload or "cold-kernel-v1")
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported trajectory schema {doc.get('schema')!r}"
        )
    recorded = doc.get("workload", "cold-kernel-v1")
    if workload is not None and recorded != workload:
        raise ValueError(
            f"{path}: trajectory records workload {recorded!r}, "
            f"expected {workload!r} — refusing to mix measurement kinds "
            f"in one file"
        )
    return Trajectory(
        entries=list(doc.get("entries", [])),
        workload=recorded,
    )


def save_trajectory(trajectory: Trajectory, path: str = DEFAULT_PATH) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(trajectory.to_doc(), f, indent=2)
        f.write("\n")
    os.replace(tmp, path)


@dataclass
class GateResult:
    """Outcome of gating one measurement against a trajectory."""

    ok: bool
    problems: list[str] = field(default_factory=list)
    #: current normalized cold time
    normalized: float = 0.0
    #: normalized-cold ratio vs the latest trajectory entry (>1 = slower)
    regression_ratio: float | None = None
    #: speedup vs the pre-optimization baseline (higher = faster)
    speedup_vs_pre: float | None = None


def gate_measurement(
    record: dict,
    trajectory: Trajectory,
    *,
    max_regression: float = 0.15,
    min_speedup: float = 3.0,
) -> GateResult:
    """Apply both gates to a fresh measurement.

    * **regression gate** — ``normalized_cold`` may not exceed the
      latest trajectory entry's by more than ``max_regression``
      (fractional, 0.15 = 15%);
    * **speedup gate** — when the trajectory has a
      ``pre-opt-baseline`` entry, the current measurement must be at
      least ``min_speedup`` times faster than it (normalized).
    """
    result = GateResult(ok=True, normalized=record["normalized_cold"])
    baseline = trajectory.baseline
    if baseline is None:
        result.ok = False
        result.problems.append(
            "no baseline entry in the trajectory: record one first "
            "(tools/perf_gate.py --record <label>)"
        )
        return result
    ratio = record["normalized_cold"] / baseline["normalized_cold"]
    result.regression_ratio = ratio
    if ratio > 1.0 + max_regression:
        result.ok = False
        result.problems.append(
            f"cold-path regression: normalized cold {record['normalized_cold']:.4f} "
            f"is {ratio:.2f}x the baseline entry "
            f"'{baseline.get('label', '?')}' ({baseline['normalized_cold']:.4f}); "
            f"allowed at most {1.0 + max_regression:.2f}x"
        )
    pre = trajectory.pre_optimization
    if pre is not None:
        speedup = pre["normalized_cold"] / record["normalized_cold"]
        result.speedup_vs_pre = speedup
        if speedup < min_speedup:
            result.ok = False
            result.problems.append(
                f"cold-kernel speedup vs pre-optimization baseline "
                f"'{pre.get('label', '?')}' is {speedup:.2f}x; "
                f"required >= {min_speedup:.1f}x"
            )
    return result


@dataclass
class ServiceGateResult:
    """Outcome of gating one service-scale measurement."""

    ok: bool
    problems: list[str] = field(default_factory=list)
    #: normalized warm p99 ratio vs the latest entry (>1 = slower)
    p99_ratio: float | None = None
    #: normalized warm throughput ratio vs the latest entry (<1 = slower)
    throughput_ratio: float | None = None
    #: max-tier steady-state throughput over 1-worker cold throughput
    scale_ratio: float = 0.0


def gate_service_measurement(
    record: dict,
    trajectory: Trajectory,
    *,
    max_regression: float = 0.15,
    min_scale: float = 3.0,
) -> ServiceGateResult:
    """Apply the service-scale gates to a fresh measurement.

    * **latency gate** — the reference normalized warm p99 may not
      exceed the latest trajectory entry's by more than
      ``max_regression`` (fractional, 0.15 = 15%);
    * **throughput gate** — the reference normalized warm throughput
      may not drop below the latest entry's by more than
      ``max_regression``;
    * **scale gate** — the max worker tier's steady-state (warm)
      throughput must be at least ``min_scale`` times the 1-worker cold
      throughput (the acceptance ratio, re-proven on every run).
    """
    result = ServiceGateResult(
        ok=True, scale_ratio=record["scale_warm_max_vs_cold_1w"],
    )
    if result.scale_ratio < min_scale:
        result.ok = False
        result.problems.append(
            f"worker scaling: max-tier steady-state throughput is only "
            f"{result.scale_ratio:.2f}x the 1-worker cold throughput; "
            f"required >= {min_scale:.1f}x"
        )
    baseline = trajectory.baseline
    if baseline is None:
        result.ok = False
        result.problems.append(
            "no baseline entry in the trajectory: record one first "
            "(tools/service_gate.py --record <label>)"
        )
        return result
    reference = record["reference"]
    base_reference = baseline["reference"]
    p99_ratio = (
        reference["normalized_warm_p99"]
        / base_reference["normalized_warm_p99"]
    )
    result.p99_ratio = p99_ratio
    if p99_ratio > 1.0 + max_regression:
        result.ok = False
        result.problems.append(
            f"p99 latency regression: normalized warm p99 "
            f"{reference['normalized_warm_p99']:.4f} is {p99_ratio:.2f}x the "
            f"baseline entry '{baseline.get('label', '?')}' "
            f"({base_reference['normalized_warm_p99']:.4f}); "
            f"allowed at most {1.0 + max_regression:.2f}x"
        )
    throughput_ratio = (
        reference["normalized_warm_throughput"]
        / base_reference["normalized_warm_throughput"]
    )
    result.throughput_ratio = throughput_ratio
    if throughput_ratio < 1.0 - max_regression:
        result.ok = False
        result.problems.append(
            f"throughput drop: normalized warm throughput "
            f"{reference['normalized_warm_throughput']:.4f} is "
            f"{throughput_ratio:.2f}x the baseline entry "
            f"'{baseline.get('label', '?')}' "
            f"({base_reference['normalized_warm_throughput']:.4f}); "
            f"allowed at least {1.0 - max_regression:.2f}x"
        )
    return result


@dataclass
class IncrementalGateResult:
    """Outcome of gating one incremental-rebuild measurement."""

    ok: bool
    problems: list[str] = field(default_factory=list)
    #: fraction of the function partition re-analyzed for the mutation
    reanalyzed_fraction: float = 0.0
    #: fraction of identification anchors whose backward symex re-executed
    sites_reexecuted_fraction: float = 0.0
    #: whether the incremental report matched the cold report exactly
    equivalent: bool = False


def gate_incremental_measurement(
    record: dict,
    trajectory: Trajectory,
    *,
    max_fraction: float = 0.05,
    max_site_fraction: float = 0.05,
) -> IncrementalGateResult:
    """Apply the incremental-rebuild gates to a fresh measurement.

    * **locality gate** — a ``functions_changed``-function mutation
      (3 of ~400 in the recorded workload) may re-analyze at most
      ``max_fraction`` of the function partition;
    * **symex locality gate** — the same mutation may re-execute the
      backward search of at most ``max_site_fraction`` of the
      identification anchors (plain sites + wrapper call sites); the
      rest must replay from cached ``funcid`` products.  Applied only
      when the record carries the site counters, so pre-funcid
      trajectory entries still load;
    * **equivalence gate** — the incremental report must be
      byte-identical (modulo runtime fields) to the cold report of the
      same mutated binary.  Speed is recorded but not gated: locality
      is the contract, wall time is machine-dependent commentary.

    Like the other gates, a trajectory without a baseline entry fails
    closed until one is recorded (``tools/incremental_gate.py --record``).
    """
    result = IncrementalGateResult(
        ok=True,
        reanalyzed_fraction=record["reanalyzed_fraction"],
        sites_reexecuted_fraction=float(
            record.get("sites_reexecuted_fraction", 0.0)
        ),
        equivalent=bool(record["equivalent"]),
    )
    if result.reanalyzed_fraction > max_fraction:
        result.ok = False
        result.problems.append(
            f"rebuild locality: a {record['functions_changed']}-function "
            f"mutation re-analyzed {record['functions_reanalyzed']} of "
            f"{record['functions_total']} functions "
            f"({100 * result.reanalyzed_fraction:.2f}%); "
            f"allowed at most {100 * max_fraction:.1f}%"
        )
    if (
        "sites_reexecuted_fraction" in record
        and result.sites_reexecuted_fraction > max_site_fraction
    ):
        result.ok = False
        result.problems.append(
            f"symex locality: a {record['functions_changed']}-function "
            f"mutation re-executed {record['sites_reexecuted']} of "
            f"{record['sites_total']} identification sites "
            f"({100 * result.sites_reexecuted_fraction:.2f}%); "
            f"allowed at most {100 * max_site_fraction:.1f}%"
        )
    if not result.equivalent:
        result.ok = False
        result.problems.append(
            "equivalence: the incremental report differed from the cold "
            "report of the same mutated binary"
        )
    if trajectory.baseline is None:
        result.ok = False
        result.problems.append(
            "no baseline entry in the trajectory: record one first "
            "(tools/incremental_gate.py --record <label>)"
        )
    return result
