"""The cold-kernel workload: what ``BENCH_cold_kernel.json`` records.

One *measurement* is a JSON-able dict with three layers:

* ``apps`` / ``cold_seconds_total`` — end-to-end cold analysis (fresh
  analyzer, no artifact store, library interfaces rebuilt) of the six
  §5.1 validation apps.  This is the number the perf gate defends.
* ``components`` — micro-benchmarks of the kernel's hot stages
  (instruction decode, CFG construction, reachability, block lookup)
  so a regression can be localised without re-profiling.
* ``calibration_seconds`` — a fixed pure-Python loop timed in the same
  run.  ``normalized_cold = cold_seconds_total / calibration_seconds``
  is what gates compare: the ratio cancels machine speed, so a
  baseline recorded on one host still gates CI runs on another.

Every timing is the **minimum** over ``repeats`` runs (the standard
best-of-N noise filter for cold-path timing).
"""

from __future__ import annotations

import platform
import sys
import time

_CALIBRATION_PAYLOAD = bytes(range(256)) * 256


def _calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload (machine-speed probe).

    Deliberately independent of this repository's code so kernel
    optimisations never change the denominator they are measured by.
    """
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for b in _CALIBRATION_PAYLOAD:
            acc = (acc * 31 + b) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - t0)
    assert acc >= 0
    return best


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_cold_kernel(repeats: int = 3) -> dict:
    """Run the cold-kernel workload and return one measurement record."""
    from ..cfg.builder import build_cfg
    from ..cfg.reachability import reachable_blocks
    from ..core import AnalysisBudget, BSideAnalyzer
    from ..corpus import APP_NAMES, build_app
    from ..x86.decoder import decode_all

    bundles = {name: build_app(name) for name in APP_NAMES}

    # ---- end-to-end cold analysis (the headline number) ---------------
    apps: dict[str, float] = {}
    for name, bundle in bundles.items():
        def run_one(bundle=bundle):
            analyzer = BSideAnalyzer(
                resolver=bundle.resolver, budget=AnalysisBudget.generous(),
            )
            report = analyzer.analyze(
                bundle.program.image, modules=bundle.module_images,
            )
            if not report.success:
                raise RuntimeError(f"cold analysis of {name} failed")
        apps[name] = _best_of(repeats, run_one)

    # ---- component micro-benchmarks -----------------------------------
    images = []
    for bundle in bundles.values():
        images.append(bundle.program.image)
        images.extend(bundle.module_images)

    def run_decode():
        for image in images:
            decode_all(image.text_bytes, image.text_base)

    def run_build_cfg():
        for image in images:
            build_cfg(image)

    # Reachability / lookup on the largest recovered graph (fresh CFG per
    # repeat so per-CFG caches never carry over between timings).
    big_image = max(images, key=lambda im: len(im.text_bytes))

    def run_reachability():
        cfg = build_cfg(big_image)
        roots = [big_image.entry] if big_image.entry else [
            sym.value for sym in big_image.exported_functions.values()
        ]
        for __ in range(50):
            reachable_blocks(cfg, roots)

    def run_block_lookup():
        cfg = build_cfg(big_image)
        for addr in range(big_image.text_base, big_image.text_end, 3):
            cfg.block_containing(addr)

    components = {
        "decode_all": _best_of(repeats, run_decode),
        "build_cfg": _best_of(repeats, run_build_cfg),
        "reachability_x50": _best_of(repeats, run_reachability),
        "block_containing_sweep": _best_of(repeats, run_block_lookup),
    }

    calibration = _calibrate()
    total = sum(apps.values())
    return {
        "workload": "cold-kernel-v1",
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "repeats": repeats,
        "calibration_seconds": round(calibration, 6),
        "apps": {name: round(seconds, 6) for name, seconds in apps.items()},
        "cold_seconds_total": round(total, 6),
        "components": {
            name: round(seconds, 6) for name, seconds in components.items()
        },
        "normalized_cold": round(total / calibration, 4),
    }


def format_measurement(record: dict) -> str:
    """Human-readable table for one measurement (bench output, CLI)."""
    lines = [
        f"cold kernel [{record['workload']}] on {record['platform']}",
        f"python {record['python']} ({record['implementation']}), "
        f"best of {record['repeats']}",
        "",
        f"{'app':<12} {'cold seconds':>12}",
    ]
    for name, seconds in record["apps"].items():
        lines.append(f"{name:<12} {seconds:>12.6f}")
    lines.append(f"{'TOTAL':<12} {record['cold_seconds_total']:>12.6f}")
    lines.append("")
    lines.append(f"{'component':<24} {'seconds':>12}")
    for name, seconds in record["components"].items():
        lines.append(f"{name:<24} {seconds:>12.6f}")
    lines.append("")
    lines.append(
        f"calibration {record['calibration_seconds']:.6f}s  ->  "
        f"normalized cold {record['normalized_cold']:.4f}"
    )
    return "\n".join(lines)
