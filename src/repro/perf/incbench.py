"""The incremental workload: what ``BENCH_incremental.json`` records.

The incremental tier's acceptance story is *rebuild locality*: when a
few functions of a large binary change, re-analysis cost must track the
size of the change, not the size of the binary.  One measurement drives
that end to end on a synthetic ~400-function static binary:

* ``cold_seconds`` — full cold analysis of the mutated binary (fresh
  analyzer, no artifact store): the incumbent cost.
* ``incremental_seconds`` — the same mutated binary analyzed through
  the incremental pipeline against a ``funccfg`` cache populated from
  the *pre-mutation* binary.  Every timed repeat gets a pristine copy
  of the populated cache (the first incremental run back-fills the
  mutated functions' products, which would otherwise skew later
  repeats warm).
* ``reanalyzed_fraction`` — ``functions_reanalyzed / functions_total``
  for a ``functions_changed``-function mutation.  This is the gated
  number: 3 changed functions out of ~400 must re-analyze < 5% of the
  partition (the changed functions plus their dependency cone — here
  just ``_start``).
* ``sites_reexecuted_fraction`` — ``sites_reexecuted / sites_total``:
  the identification anchors (plain sites + wrapper call sites) whose
  backward symex actually re-executed, versus those replayed from
  ``funcid`` products.  Also gated at 5%: the symex stage must scale
  with the change too, not just CFG recovery.
* ``equivalent`` — whether the incremental report is byte-identical
  (modulo runtime fields) to the cold report of the same mutated
  bytes.  A fast-but-wrong incremental path must never pass the gate.

Timings are best-of-``repeats`` and normalized by the same in-run
calibration loop the other workloads use, so entries compare across
machines.
"""

from __future__ import annotations

import os
import platform
import shutil
import sys
import tempfile
import time

from .coldbench import _best_of, _calibrate

#: defaults: a 3-of-~400-function rebuild (the acceptance scenario)
DEFAULT_FUNCTIONS = 400
DEFAULT_CHANGED = 3


def build_incremental_workload(n_funcs: int = DEFAULT_FUNCTIONS):
    """A static binary with ``n_funcs`` leaf functions plus ``_start``.

    Every leaf loads a (known) syscall number and invokes it — each is a
    mutable site for :func:`repro.corpus.mutate.mutate_program` — and
    ``_start`` calls them all, so a leaf mutation's dependency cone is
    exactly ``{leaf, _start}``.
    """
    from ..corpus import ProgramBuilder
    from ..syscalls.table import SYSCALL_NAMES
    from ..x86 import EAX

    numbers = sorted(SYSCALL_NAMES)
    p = ProgramBuilder("incbench")
    for i in range(n_funcs):
        with p.function(f"fn{i:03d}"):
            p.asm.mov(EAX, numbers[i % len(numbers)])
            p.asm.syscall()
            p.asm.ret()
    with p.function("_start"):
        for i in range(n_funcs):
            p.asm.call(f"fn{i:03d}")
        p.asm.mov(EAX, 231)  # exit_group
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


def measure_incremental(
    repeats: int = 3,
    *,
    n_funcs: int = DEFAULT_FUNCTIONS,
    changed: int = DEFAULT_CHANGED,
    seed: int = 2024,
) -> dict:
    """Run the incremental workload and return one measurement record."""
    from ..core import ArtifactStore, BSideAnalyzer
    from ..core.report import AnalysisBudget
    from ..corpus.mutate import mutate_program
    from ..loader.image import LoadedImage

    # generous(): the default per-run wrapper-confirmation budget is
    # sized for real binaries, not 400 direct sites in one image.
    budget = AnalysisBudget.generous()
    prog = build_incremental_workload(n_funcs)
    mutated = mutate_program(prog.elf_bytes, prog.name, changed, seed=seed)

    # ---- cold incumbent: full analysis of the mutated binary -----------
    def run_cold():
        analyzer = BSideAnalyzer(budget=budget)
        report = analyzer.analyze(
            LoadedImage.from_bytes(prog.name, mutated.elf_bytes)
        )
        if not report.success:
            raise RuntimeError("cold analysis of the workload failed")
    cold_seconds = _best_of(repeats, run_cold)

    cold_report = BSideAnalyzer(budget=budget).analyze(
        LoadedImage.from_bytes(prog.name, mutated.elf_bytes)
    )

    workdir = tempfile.mkdtemp(prefix="bside-incbench-")
    try:
        # ---- populate the funccfg cache from the pre-mutation binary ---
        base_cache = os.path.join(workdir, "cache-populated")
        populate = BSideAnalyzer(
            budget=budget,
            artifact_store=ArtifactStore(base_cache),
            incremental=True,
        )
        warm = populate.analyze(
            LoadedImage.from_bytes(prog.name, prog.elf_bytes)
        )
        if not warm.success:
            raise RuntimeError("populating analysis of the workload failed")

        # ---- timed incremental re-analysis of the mutation -------------
        incremental_seconds = float("inf")
        inc_report = None
        for run in range(repeats):
            cache = os.path.join(workdir, f"cache-run{run}")
            shutil.copytree(base_cache, cache)
            t0 = time.perf_counter()
            analyzer = BSideAnalyzer(
                budget=budget,
                artifact_store=ArtifactStore(cache),
                incremental=True,
            )
            report = analyzer.analyze(
                LoadedImage.from_bytes(prog.name, mutated.elf_bytes)
            )
            incremental_seconds = min(
                incremental_seconds, time.perf_counter() - t0
            )
            if inc_report is None:
                inc_report = report
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    total = inc_report.functions_total
    reanalyzed = inc_report.functions_reanalyzed
    sites_total = inc_report.sites_total
    sites_reexecuted = inc_report.sites_reexecuted
    equivalent = (
        inc_report.to_json(include_runtime=False)
        == cold_report.to_json(include_runtime=False)
    )
    calibration = _calibrate()
    return {
        "workload": "incremental-v1",
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "repeats": repeats,
        "calibration_seconds": round(calibration, 6),
        "functions_total": total,
        "functions_changed": changed,
        "functions_reanalyzed": reanalyzed,
        "reanalyzed_fraction": round(reanalyzed / total, 6) if total else 1.0,
        "sites_total": sites_total,
        "sites_reexecuted": sites_reexecuted,
        "sites_reexecuted_fraction": (
            round(sites_reexecuted / sites_total, 6) if sites_total else 1.0
        ),
        "equivalent": equivalent,
        "cold_seconds": round(cold_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "normalized_cold": round(cold_seconds / calibration, 4),
        "normalized_incremental": round(incremental_seconds / calibration, 4),
        "speedup_incremental": round(cold_seconds / incremental_seconds, 2),
    }


def format_incremental_measurement(record: dict) -> str:
    """Human-readable summary for one measurement (bench output, CLI)."""
    return "\n".join([
        f"incremental rebuild [{record['workload']}] "
        f"on {record['platform']}",
        f"python {record['python']} ({record['implementation']}), "
        f"best of {record['repeats']}",
        "",
        f"functions: {record['functions_total']} total, "
        f"{record['functions_changed']} mutated -> "
        f"{record['functions_reanalyzed']} re-analyzed "
        f"({100 * record['reanalyzed_fraction']:.2f}%)",
        f"sites: {record.get('sites_total', 0)} total -> "
        f"{record.get('sites_reexecuted', 0)} re-executed "
        f"({100 * record.get('sites_reexecuted_fraction', 1.0):.2f}%)",
        f"equivalent to cold: {record['equivalent']}",
        "",
        f"cold        {record['cold_seconds']:>12.6f}s "
        f"(normalized {record['normalized_cold']:.4f})",
        f"incremental {record['incremental_seconds']:>12.6f}s "
        f"(normalized {record['normalized_incremental']:.4f}, "
        f"{record['speedup_incremental']:.2f}x)",
        "",
        f"calibration {record['calibration_seconds']:.6f}s",
    ])
