"""Corpus generation: program builder, language styles, libc, apps, Debian set."""

from .apps import APP_NAMES, APP_SPECS, AppBundle, AppSpec, build_all_apps, build_app
from .debian import CorpusBinary, DebianCorpus, make_debian_corpus
from .langstyles import ALL_STYLES, LANGUAGE_PROFILES, emit_syscall
from .libc import LIBC_NAME, build_libc, libc_direct_numbers, libc_wrapped_numbers
from .progbuilder import BuiltProgram, ProgramBuilder, QuadRef

__all__ = [
    "BuiltProgram",
    "ProgramBuilder",
    "QuadRef",
    "ALL_STYLES",
    "LANGUAGE_PROFILES",
    "emit_syscall",
    "LIBC_NAME",
    "build_libc",
    "libc_direct_numbers",
    "libc_wrapped_numbers",
    "APP_NAMES",
    "APP_SPECS",
    "AppSpec",
    "AppBundle",
    "build_app",
    "build_all_apps",
    "CorpusBinary",
    "DebianCorpus",
    "make_debian_corpus",
]
