"""The six validation applications (§5.1): Redis, Nginx, HAProxy,
Memcached, Lighttpd, SQLite — as synthetic profiles.

Each profile captures what the validation experiment needs from the real
application:

* an **init / serve-loop / shutdown** phase structure (drives §5.4),
* a realistic per-app syscall footprint reached through libc imports,
  app-local direct sites, and the exported ``syscall()`` wrapper,
* **input-conditional operations** plus a scripted *test suite* of input
  vectors that covers them (the strace-on-test-suite ground truth),
* **error-path code**: statically reachable, never executed by the test
  suite — the natural source of static-analysis false positives that the
  paper's F1 scores quantify,
* per-app use of wrapper-routed syscalls, reproducing the exact false
  negatives Figure 7 reports for SysFilter (via ``syscall()`` and the
  internal musl-style wrapper) and Chestnut (internal wrapper + its
  fallback denylist),
* for Nginx, a dlopen-style module (§4.5/§5.1 note that its modules are
  processed alongside the main binary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..loader.resolve import LibraryResolver
from ..syscalls.table import SYSCALL_NUMBERS
from ..x86.registers import EAX, R12, R13, R14, RAX, RBX, RDI, RSI, RDX
from .langstyles import emit_direct, emit_split, emit_stack
from .libc import LIBC_NAME, build_libc, export_for
from .progbuilder import BuiltProgram, ProgramBuilder, QuadRef

#: magic value that the error-path guard compares against; no test-suite
#: input ever equals it, so error paths never execute.
ERROR_MAGIC = 0x7EAD


@dataclass(frozen=True)
class AppSpec:
    """Declarative description of one application profile."""

    name: str
    init: tuple[str, ...]
    serve: tuple[str, ...]
    #: clusters of input-selected operations (suite covers each index)
    conditional: tuple[tuple[str, ...], ...]
    shutdown: tuple[str, ...]
    #: syscalls invoked through the *exported* ``syscall()`` wrapper —
    #: resolved by B-Side and Chestnut, missed by SysFilter
    via_syscall_export: tuple[str, ...] = ()
    #: syscalls invoked through libc exports routed via the *internal*
    #: wrapper — missed by SysFilter AND unresolvable for Chestnut
    via_wrapped_import: tuple[str, ...] = ()
    #: never-executed error paths: c_<name> imports behind a dead guard
    error_imports: tuple[str, ...] = ()
    #: never-executed error paths via ``syscall(nr)`` with exotic numbers
    error_syscall_numbers: tuple[str, ...] = ()
    #: never-executed error *handlers*: clusters of c_<name> imports
    #: routed through app-local handler functions that are address-taken
    #: only via a data-segment pointer table and invoked by one dead
    #: indirect dispatch.  The handlers read argument registers the
    #: dispatch site never prepares, so the signature refinement prunes
    #: them while plain active-addresses-taken resolution keeps them —
    #: the realistic FP class iResolveX's arity filtering removes.
    error_dispatch: tuple[tuple[str, ...], ...] = ()
    #: direct sites in the app binary itself (style mix: Figure 1 A/B/C)
    app_direct: tuple[str, ...] = ()
    #: dlopen-style module: (soname, (syscall names...))
    module: tuple | None = None

    def runtime_syscalls(self) -> set[int]:
        """The syscalls the app actually makes under full suite coverage."""
        names: set[str] = set(self.init) | set(self.serve) | set(self.shutdown)
        for cluster in self.conditional:
            names |= set(cluster)
        names |= set(self.via_syscall_export)
        names |= set(self.via_wrapped_import)
        names |= set(self.app_direct)
        if self.module:
            names |= set(self.module[1])
        names.add("exit_group")
        return {SYSCALL_NUMBERS[n] for n in names}


_COMMON_INIT = (
    "brk", "mmap", "mprotect", "munmap", "rt_sigaction", "rt_sigprocmask",
    "arch_prctl", "access", "openat", "read", "fstat", "close",
    "set_tid_address", "prlimit64", "getrandom",
)

APP_SPECS: dict[str, AppSpec] = {
    "redis": AppSpec(
        name="redis",
        init=_COMMON_INIT + (
            "open", "stat", "getcwd", "uname", "sysinfo", "getpid",
            "getppid", "getuid", "geteuid", "setrlimit", "getrlimit",
            "socket", "bind", "listen", "epoll_create1", "epoll_ctl",
            "setsockopt", "pipe2", "clock_gettime", "sigaltstack", "prctl",
        ),
        serve=(
            "epoll_wait", "accept4", "write", "sendto", "recvfrom",
            "futex", "clock_nanosleep", "nanosleep", "gettimeofday",
            "madvise", "mremap", "writev", "readv", "lseek", "fdatasync",
            "fsync", "ftruncate", "getdents64", "unlink", "rename",
            "dup2", "fcntl", "gettid",
        ),
        conditional=(
            ("fork", "wait4", "execve"),         # background save + exec
            ("pipe", "chdir", "mkdir", "rmdir"),  # admin commands
            ("kill", "tgkill",),                  # signal handling paths
        ),
        shutdown=("fsync", "close", "unlink", "munmap"),
        via_syscall_export=(
            "sched_yield", "times", "alarm", "getitimer", "msync",
            "mincore", "splice",
        ),
        via_wrapped_import=("io_submit",),
        error_imports=(
            "faccessat", "newfstatat", "mkdirat", "unlinkat",
            "inotify_init1", "timerfd_create", "eventfd2", "dup3",
            "socketpair", "getpeername", "getsockname", "shutdown",
        ),
        error_dispatch=(
            ("symlink", "link", "truncate", "chown", "fchmod"),
            ("flock", "memfd_create", "fallocate", "copy_file_range",
             "utimensat"),
        ),
        error_syscall_numbers=(
            "setxattr", "getxattr", "mount", "umount2", "sethostname",
            "mknod", "swapon", "init_module", "uselib", "readlinkat",
        ),
        app_direct=("getegid", "getgid"),
    ),
    "nginx": AppSpec(
        name="nginx",
        init=_COMMON_INIT + (
            "open", "stat", "getcwd", "uname", "getpid", "getuid",
            "geteuid", "socket", "bind", "listen", "epoll_create1",
            "epoll_ctl", "setsockopt", "pipe2", "clock_gettime", "prctl",
            "sigaltstack", "getrlimit",
        ),
        serve=(
            "epoll_wait", "accept4", "write", "writev", "sendfile",
            "recvfrom", "ioctl", "futex", "gettimeofday", "lseek",
            "pread64", "getdents64", "unlink", "rename", "fcntl",
            "gettid", "nanosleep",
        ),
        conditional=(
            ("chown", "fchmod", "mkdir", "rmdir"),  # cache management
            ("utimensat", "newfstatat"),            # stat-heavy paths
            ("kill",),                              # master->worker signals
        ),
        shutdown=("close", "munmap", "kill"),
        error_imports=(
            "fork", "wait4", "pipe", "shutdown",
            "dup3", "eventfd2", "timerfd_create", "inotify_init1",
            "faccessat", "mkdirat", "unlinkat", "connect",
        ),
        error_dispatch=(
            ("symlink", "link", "truncate", "flock", "fallocate"),
            ("copy_file_range", "memfd_create", "socketpair",
             "getpeername", "getsockname"),
        ),
        error_syscall_numbers=(
            "setxattr", "listxattr", "removexattr", "mount", "swapon",
            "quotactl", "mlock", "munlock",
        ),
        app_direct=("getegid", "getgid"),
        module=("mod_http.so", ("mknod", "getxattr")),
    ),
    "haproxy": AppSpec(
        name="haproxy",
        init=_COMMON_INIT + (
            "socket", "bind", "listen", "setsockopt", "getsockopt",
            "epoll_create1", "epoll_ctl", "pipe2", "clock_gettime",
            "getpid", "getuid", "prctl", "sigaltstack", "uname",
            "getrlimit", "setrlimit",
        ),
        serve=(
            "epoll_wait", "accept4", "read", "write", "close",
            "recvfrom", "sendto", "connect", "sendmsg", "recvmsg",
            "shutdown", "futex", "gettimeofday", "fcntl",
        ),
        conditional=(
            ("fork", "wait4", "pipe"),
            ("getdents64", "openat"),
        ),
        shutdown=("close", "munmap"),
        via_syscall_export=(
            "sched_yield", "times", "alarm", "getitimer", "msync",
            "splice", "tee", "readahead", "sync", "sync_file_range",
        ),
        via_wrapped_import=("keyctl",),
        error_imports=(
            "dup3", "socketpair", "timerfd_create", "eventfd2",
            "memfd_create",
        ),
        error_dispatch=(
            ("execve", "mkdir", "unlink"),
            ("rename", "truncate", "flock"),
        ),
        error_syscall_numbers=("setxattr", "mount", "sethostname"),
        app_direct=("getegid",),
    ),
    "memcached": AppSpec(
        name="memcached",
        init=_COMMON_INIT + (
            "socket", "bind", "listen", "setsockopt", "epoll_create1",
            "epoll_ctl", "pipe2", "clock_gettime", "getpid", "getuid",
            "geteuid", "getrlimit", "setrlimit", "uname", "sigaltstack",
        ),
        serve=(
            "epoll_wait", "accept4", "read", "write", "sendmsg",
            "recvfrom", "futex", "gettimeofday", "nanosleep", "madvise",
        ),
        conditional=(
            ("openat", "getdents64", "unlink"),
            ("kill", "gettid"),
        ),
        shutdown=("close", "munmap"),
        via_syscall_export=("sched_yield", "times", "getitimer", "msync"),
        error_imports=(
            "fork", "wait4", "pipe", "dup3",
        ),
        error_dispatch=(
            ("truncate", "flock", "mkdir"),
            ("socketpair", "eventfd2", "memfd_create"),
        ),
        error_syscall_numbers=("mount", "setxattr"),
        app_direct=("getegid",),
    ),
    "lighttpd": AppSpec(
        name="lighttpd",
        init=_COMMON_INIT + (
            "open", "stat", "getcwd", "socket", "bind", "listen",
            "setsockopt", "epoll_create1", "epoll_ctl", "pipe2",
            "clock_gettime", "getpid", "getuid", "uname", "sigaltstack",
        ),
        serve=(
            "epoll_wait", "accept4", "read", "write", "writev",
            "sendfile", "lseek", "pread64", "futex", "gettimeofday",
            "getdents64", "fcntl",
        ),
        conditional=(
            ("unlink", "rename", "mkdir"),
            ("chown", "fchmod"),
        ),
        shutdown=("close", "munmap"),
        via_syscall_export=("sched_yield", "times", "alarm"),
        via_wrapped_import=("personality", "ustat"),
        error_imports=(
            "fork", "wait4", "pipe", "dup3", "socketpair",
            "timerfd_create", "unlinkat", "eventfd2", "memfd_create",
            "connect",
        ),
        error_dispatch=(
            ("truncate", "flock", "symlink", "link"),
            ("fallocate", "copy_file_range", "faccessat", "mkdirat"),
        ),
        error_syscall_numbers=("setxattr", "mount", "quotactl", "mknod"),
        app_direct=("getegid", "getgid"),
    ),
    "sqlite": AppSpec(
        name="sqlite",
        init=_COMMON_INIT + (
            "open", "stat", "getcwd", "getpid", "getuid", "geteuid",
            "clock_gettime", "uname",
        ),
        serve=(
            "lseek", "write", "fsync", "fdatasync", "ftruncate",
            "fcntl", "unlink", "newfstatat", "pread64", "pwrite64",
        ),
        conditional=(
            ("openat", "getdents64"),
            ("rename", "truncate"),
        ),
        shutdown=("close", "munmap"),
        via_syscall_export=(
            "sched_yield", "times", "alarm", "pause", "getitimer",
            "msync", "mincore", "readahead", "sync", "sync_file_range",
        ),
        error_imports=(
            "fork", "wait4", "execve", "pipe", "dup3", "mkdir",
            "rmdir", "faccessat", "mkdirat", "unlinkat",
        ),
        error_dispatch=(
            ("flock", "symlink", "link", "chown"),
            ("fchmod", "utimensat", "memfd_create", "fallocate"),
        ),
        error_syscall_numbers=("setxattr", "mount", "mknod", "uselib"),
        app_direct=("getegid",),
    ),
}

APP_NAMES = tuple(APP_SPECS)

_MODULE_BASE = 0x7F10_0000_0000


@dataclass
class AppBundle:
    """A built application: binary, modules, resolver, test suite."""

    spec: AppSpec
    program: BuiltProgram
    modules: list[BuiltProgram] = field(default_factory=list)
    resolver: LibraryResolver | None = None
    suite: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def module_images(self):
        return [m.image for m in self.modules]

    def expected_runtime_syscalls(self) -> set[int]:
        return self.spec.runtime_syscalls()


def _build_module(soname: str, syscall_names: tuple[str, ...], base: int) -> BuiltProgram:
    p = ProgramBuilder(soname, soname=soname, text_base=base)
    with p.function("mod_entry", exported=True):
        for i, name in enumerate(syscall_names):
            emit_direct(p, SYSCALL_NUMBERS[name], f"mod{i}")
        p.asm.ret()
    return p.build()


def _emit_import_calls(p: ProgramBuilder, names, seen: set[str]) -> None:
    for name in names:
        export = export_for(name)
        p.call_import(export)
        seen.add(export)


@lru_cache(maxsize=None)
def build_app(name: str) -> AppBundle:
    """Build (and memoise) one application bundle."""
    spec = APP_SPECS[name]
    libc = build_libc()

    modules: list[BuiltProgram] = []
    if spec.module:
        soname, mod_syscalls = spec.module
        modules.append(_build_module(soname, tuple(mod_syscalls), _MODULE_BASE))

    p = ProgramBuilder(name, pic=True, needed=[LIBC_NAME])
    imported: set[str] = set()

    # ---- init ----------------------------------------------------------
    with p.function("app_init"):
        _emit_import_calls(p, spec.init, imported)
        for nr_name in spec.via_syscall_export:
            p.asm.mov(RDI, SYSCALL_NUMBERS[nr_name])
            p.call_import("syscall")
        for i, nr_name in enumerate(spec.app_direct):
            style = (emit_direct, emit_split, emit_stack)[i % 3]
            style(p, SYSCALL_NUMBERS[nr_name], f"{name}.d{i}")
        # Error path: statically reachable, dynamically dead.
        p.asm.cmp(RBX, ERROR_MAGIC)
        p.asm.jcc("ne", "init.noerr")
        _emit_import_calls(p, spec.error_imports, imported)
        for nr_name in spec.error_syscall_numbers:
            p.asm.mov(RDI, SYSCALL_NUMBERS[nr_name])
            p.call_import("syscall")
        if spec.error_dispatch:
            # Dead handler dispatch: the handler pointer travels through
            # a non-argument register and only %rdi is prepared, while
            # every handler reads %rsi/%rdx — signature-incompatible, so
            # the refinement prunes what plain addresses-taken keeps.
            p.asm.mov_from_rip(RAX, "errtab")
            p.asm.xor(RDI, RDI)
            p.asm.call_reg(RAX)
        p.call_import("c_abort")
        p.asm.label("init.noerr")
        p.asm.ret()

    # ---- error handlers (dead code behind the dispatch table) ----------
    for k, cluster in enumerate(spec.error_dispatch):
        with p.function(f"errh{k}"):
            # Two argument-register reads before the first call give the
            # handler the callee signature {rsi, rdx}.
            p.asm.mov(RAX, RSI)
            p.asm.add(RAX, RDX)
            _emit_import_calls(p, cluster, imported)
            p.asm.ret()
    if spec.error_dispatch:
        # The handlers' only address-taking site: a statically
        # initialised function-pointer table in the data segment.
        p.add_quads(
            "errtab",
            [QuadRef(f"errh{k}") for k in range(len(spec.error_dispatch))],
        )

    # ---- serve ------------------------------------------------------------
    with p.function("app_serve"):
        _emit_import_calls(p, spec.serve, imported)
        for idx, cluster in enumerate(spec.conditional):
            p.asm.cmp(R13, idx + 1)
            p.asm.jcc("ne", f"serve.skip{idx}")
            _emit_import_calls(p, cluster, imported)
            p.asm.label(f"serve.skip{idx}")
        p.asm.ret()

    # ---- shutdown -----------------------------------------------------------
    with p.function("app_shutdown"):
        _emit_import_calls(p, spec.shutdown, imported)
        for nr_name in spec.via_wrapped_import:
            p.call_import(export_for(nr_name))
            imported.add(export_for(nr_name))
        if modules:
            p.asm.movabs(R14, modules[0].image.symbol_addr("mod_entry"))
            p.asm.call_reg(R14)
        p.asm.ret()

    # ---- entry -----------------------------------------------------------------
    with p.function("_start", exported=True):
        p.asm.mov(RBX, RDI)   # input 0: error-path guard value
        p.asm.mov(R12, RSI)   # input 1: serve-loop iterations
        p.asm.mov(R13, RDX)   # input 2: conditional-op selector
        p.asm.call("app_init")
        p.asm.cmp(R12, 0)
        p.asm.jcc("e", "main.done")
        p.asm.label("main.loop")
        p.asm.call("app_serve")
        p.asm.sub(R12, 1)
        p.asm.cmp(R12, 0)
        p.asm.jcc("ne", "main.loop")
        p.asm.label("main.done")
        p.asm.call("app_shutdown")
        p.asm.mov(EAX, SYSCALL_NUMBERS["exit_group"])
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    p.meta["spec"] = spec.name
    program = p.build()

    resolver = LibraryResolver(library_map={LIBC_NAME: libc.elf_bytes})

    # Test suite: cover no-loop, the loop, and every conditional cluster.
    suite: list[tuple[int, ...]] = [(0, 0, 0), (0, 1, 0), (0, 2, 0)]
    for idx in range(len(spec.conditional)):
        suite.append((0, 1, idx + 1))

    return AppBundle(
        spec=spec,
        program=program,
        modules=modules,
        resolver=resolver,
        suite=suite,
    )


def build_all_apps() -> dict[str, AppBundle]:
    return {name: build_app(name) for name in APP_NAMES}
