"""The corpus' synthetic C library (and the library-pool generator).

``build_libc()`` produces ``libc.so``, the library every dynamic corpus
binary links against.  Its structure mirrors how real libcs expose the
kernel:

* most exported functions (``c_read``, ``c_socket``, ...) contain a
  **direct inlined** ``mov eax, N; syscall`` — glibc's INTERNAL_SYSCALL
  shape, visible to every analysis strategy;
* a set of rarely-used syscalls is routed **exclusively** through the
  internal register wrapper ``__syscall_internal`` (musl's shape) — these
  are invisible to register-only intra-procedural analyses (SysFilter) and
  to Chestnut's 30-instruction scan (its hard-coded detector only knows
  the *exported* ``syscall`` symbol);
* the classic ``syscall(nr, ...)`` function is exported;
* composite functions (``c_fopen``, ``c_malloc``, ...) call other libc
  functions internally — exercising per-export reachability;
* one internal function-pointer dispatch exercises address-taken handling
  inside libraries.

The export naming convention is ``c_<syscall name>``; applications import
what they use, so each app's reachable-export set induces its libc
syscall footprint.
"""

from __future__ import annotations

from functools import lru_cache

from ..syscalls.table import SYSCALL_NUMBERS
from ..x86.insn import Memory
from ..x86.registers import EAX, RAX, RDI, RSI, RSP
from .langstyles import define_reg_wrapper
from .progbuilder import BuiltProgram, ProgramBuilder

LIBC_NAME = "libc.so"
LIBC_BASE = 0x7F00_0000_1000

#: syscalls exported through direct inlined sites (c_<name> exports).
LIBC_DIRECT_SYSCALLS: tuple[str, ...] = (
    "read", "write", "open", "close", "stat", "fstat",
    "lseek", "mmap", "mprotect", "munmap", "brk", "rt_sigaction",
    "rt_sigprocmask", "ioctl", "pread64", "pwrite64", "readv", "writev",
    "access", "pipe", "mremap", "madvise", "dup2",
    "nanosleep", "getpid", "sendfile", "socket", "connect",
    "sendto", "recvfrom", "sendmsg", "recvmsg", "shutdown", "bind",
    "listen", "setsockopt",
    "getsockopt", "clone", "fork", "vfork", "execve", "exit", "wait4",
    "kill", "uname", "fcntl", "fsync", "fdatasync", "truncate",
    "ftruncate", "getcwd", "chdir", "rename",
    "mkdir", "rmdir", "unlink",
    "fchmod", "chown", "gettimeofday", "getrlimit",
    "sysinfo", "getuid", "getgid", "geteuid", "getegid",
    "getppid", "exit_group", "epoll_wait",
    "epoll_ctl", "openat", "getdents64", "set_tid_address",
    "clock_gettime", "clock_nanosleep", "futex", "accept4",
    "epoll_create1", "pipe2", "getrandom", "prctl",
    "arch_prctl", "tgkill", "gettid", "setrlimit", "prlimit64",
    "sigaltstack",
    "newfstatat", "faccessat", "utimensat", "fallocate", "flock",
    "copy_file_range", "memfd_create",
)

#: syscalls routed ONLY through the internal wrapper (no direct site
#: anywhere): the wrapper-blind analyses cannot see these.  Besides the
#: classic odd ones (musl routes rare syscalls through __syscall), this
#: set carries the long tail of convenience exports.
LIBC_WRAPPED_SYSCALLS: tuple[str, ...] = (
    "sched_yield", "times", "alarm", "pause", "getitimer", "sync",
    "getpgrp", "msync", "mincore", "readahead", "splice", "tee",
    "sync_file_range", "sched_getaffinity", "sched_setaffinity",
    "io_submit", "io_setup", "keyctl", "add_key", "request_key",
    "personality", "vhangup", "ustat", "sysfs", "ioperm", "modify_ldt",
    "pivot_root",
    # long-tail exports routed through the internal wrapper
    "lstat", "poll", "select", "dup", "accept", "getsockname",
    "getpeername", "socketpair", "getdents", "fchdir", "creat", "link",
    "symlink", "readlink", "chmod", "getrusage", "setuid", "setgid",
    "epoll_create", "setsid", "dup3", "eventfd2", "timerfd_create",
    "inotify_init1", "setitimer", "umask", "mkdirat", "unlinkat",
    "statx",
)

#: composite exports: function name -> list of libc functions it calls.
LIBC_COMPOSITES: dict[str, tuple[str, ...]] = {
    "c_fopen": ("c_open", "c_fstat"),
    "c_fclose": ("c_close",),
    "c_malloc": ("c_brk", "c_mmap"),
    "c_realloc": ("c_mremap", "c_brk"),
    "c_free": ("c_munmap",),
    "c_printf": ("c_write",),
    "c_puts": ("c_write",),
    "c_fgets": ("c_read",),
    "c_server_listen": ("c_socket", "c_bind", "c_listen"),
    "c_server_accept": ("c_accept4", "c_setsockopt"),
    "c_client_connect": ("c_socket", "c_connect"),
    "c_spawn": ("c_fork", "c_execve", "c_wait4"),
    "c_tmpfile": ("c_openat", "c_unlink"),
    "c_gmtime": ("c_clock_gettime",),
    "c_abort": ("c_rt_sigprocmask", "c_kill", "c_exit_group"),
    "c_dlopen_stub": ("c_openat", "c_mmap", "c_mprotect", "c_close"),
}

INTERNAL_WRAPPER = "__syscall_internal"


@lru_cache(maxsize=None)
def build_libc() -> BuiltProgram:
    """Build (and memoise) the corpus libc."""
    p = ProgramBuilder(LIBC_NAME, soname=LIBC_NAME, text_base=LIBC_BASE)

    # Internal wrapper: musl-style, NOT named "syscall".
    define_reg_wrapper(p, INTERNAL_WRAPPER, exported=False)

    # The classic exported wrapper, recognised by name by Chestnut.
    define_reg_wrapper(p, "syscall", exported=True)

    # Direct-site exports.
    for name in LIBC_DIRECT_SYSCALLS:
        nr = SYSCALL_NUMBERS[name]
        with p.function(f"c_{name}", exported=True):
            p.asm.mov(EAX, nr)
            p.asm.syscall()
            p.asm.ret()

    # Wrapper-routed exports: the number only ever exists in %rdi.
    for name in LIBC_WRAPPED_SYSCALLS:
        nr = SYSCALL_NUMBERS[name]
        with p.function(f"c_{name}", exported=True):
            p.asm.mov(RDI, nr)
            p.asm.call(INTERNAL_WRAPPER)
            p.asm.ret()

    # Composites.
    for name, callees in LIBC_COMPOSITES.items():
        with p.function(name, exported=True):
            for callee in callees:
                p.asm.call(callee)
            p.asm.ret()

    # Internal function-pointer dispatch (address taken inside a library).
    with p.function("__cleanup_impl"):
        p.asm.mov(EAX, SYSCALL_NUMBERS["munmap"])
        p.asm.syscall()
        p.asm.ret()
    with p.function("c_run_atexit", exported=True):
        p.asm.lea_rip(RSI, "__cleanup_impl")
        p.asm.call_reg(RSI)
        p.asm.ret()

    return p.build()


def libc_direct_numbers() -> set[int]:
    """Numbers of all direct-site syscalls in libc (what a vacuum finds)."""
    return {SYSCALL_NUMBERS[n] for n in LIBC_DIRECT_SYSCALLS} | {
        SYSCALL_NUMBERS["munmap"],
    }


def libc_wrapped_numbers() -> set[int]:
    return {SYSCALL_NUMBERS[n] for n in LIBC_WRAPPED_SYSCALLS}


def export_for(syscall_name: str) -> str:
    """Name of the libc export invoking one syscall."""
    return f"c_{syscall_name}"
