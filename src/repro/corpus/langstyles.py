"""System-call invocation styles per source language / runtime.

The evaluation's phenomena are structural: *how* compiled code loads the
syscall number determines which identification strategies succeed.  Each
emitter produces one invocation of a given syscall using one style:

========  ==============================================================
direct    ``mov eax, N; syscall`` in one block (Figure 1 A; glibc's
          inlined INTERNAL_SYSCALL macro)
split     number defined in a predecessor block, reached through a
          conditional (Figure 1 B)
stack     number stored to the stack, reloaded into rax (Figure 1 C)
reg-wrap  ``mov rdi, N; call wrapper`` — SysV register-argument wrapper
          (glibc's exported ``syscall()``, musl internals)
stk-wrap  number written to the outgoing stack-argument slot
          (Go's ABI0 runtime wrappers)
========  ==============================================================

Wrapper *definitions* are emitted separately so several invocations share
one wrapper — the structure that makes undirected backward search explode
(Figure 2) and that B-Side's heuristic is built for.
"""

from __future__ import annotations

from ..x86.insn import Memory
from ..x86.registers import EAX, RAX, RDI, RSP
from .progbuilder import ProgramBuilder

STYLE_DIRECT = "direct"
STYLE_SPLIT = "split"
STYLE_STACK = "stack"
STYLE_REG_WRAPPER = "reg-wrap"
STYLE_STACK_WRAPPER = "stk-wrap"

ALL_STYLES = (
    STYLE_DIRECT, STYLE_SPLIT, STYLE_STACK,
    STYLE_REG_WRAPPER, STYLE_STACK_WRAPPER,
)

#: which styles each modelled language/runtime uses, and how its internal
#: wrapper (if any) passes the syscall number
LANGUAGE_PROFILES: dict[str, dict] = {
    "c-glibc": {
        "styles": (STYLE_DIRECT, STYLE_SPLIT, STYLE_REG_WRAPPER),
        "wrapper": "reg",
    },
    "c-musl": {
        "styles": (STYLE_DIRECT, STYLE_REG_WRAPPER),
        "wrapper": "reg",
    },
    "go": {
        "styles": (STYLE_STACK, STYLE_STACK_WRAPPER),
        "wrapper": "stack",
    },
    "rust": {
        "styles": (STYLE_DIRECT, STYLE_REG_WRAPPER),
        "wrapper": "reg",
    },
    "haskell": {
        "styles": (STYLE_DIRECT, STYLE_SPLIT),
        "wrapper": None,
    },
}


def define_reg_wrapper(p: ProgramBuilder, name: str, exported: bool = False) -> None:
    """``wrapper(nr, ...)``: number in %rdi (glibc/musl/Rust shape)."""
    with p.function(name, exported=exported):
        p.asm.mov(RAX, RDI)
        p.asm.syscall()
        p.asm.ret()


def define_stack_wrapper(p: ProgramBuilder, name: str, exported: bool = False) -> None:
    """Go-style wrapper: number in the first stack-argument slot."""
    with p.function(name, exported=exported):
        p.asm.mov(RAX, Memory(base=RSP, disp=8))
        p.asm.syscall()
        p.asm.ret()


def emit_direct(p: ProgramBuilder, nr: int, tag: str) -> None:
    p.asm.mov(EAX, nr)
    p.asm.syscall()


def emit_split(p: ProgramBuilder, nr: int, tag: str) -> None:
    """Immediate in a separate block, joined through a conditional."""
    p.asm.mov(EAX, nr)
    p.asm.test(RDI, RDI)
    p.asm.jcc("ns", f"{tag}.go")  # inputs are small non-negatives: taken
    p.asm.nop()
    p.asm.label(f"{tag}.go")
    p.asm.syscall()


def emit_stack(p: ProgramBuilder, nr: int, tag: str) -> None:
    """Number bounced through a stack slot (defeats register-only tracking)."""
    p.asm.sub(RSP, 0x10)
    p.asm.mov(Memory(base=RSP, disp=8), nr)
    p.asm.mov(RAX, Memory(base=RSP, disp=8))
    p.asm.add(RSP, 0x10)
    p.asm.syscall()


def emit_via_reg_wrapper(p: ProgramBuilder, nr: int, tag: str, wrapper: str) -> None:
    p.asm.mov(RDI, nr)
    p.asm.call(wrapper)


def emit_via_stack_wrapper(p: ProgramBuilder, nr: int, tag: str, wrapper: str) -> None:
    p.asm.sub(RSP, 0x10)
    p.asm.mov(Memory(base=RSP, disp=0), nr)
    p.asm.call(wrapper)
    p.asm.add(RSP, 0x10)


def emit_syscall(
    p: ProgramBuilder,
    nr: int,
    style: str,
    tag: str,
    reg_wrapper: str = "",
    stack_wrapper: str = "",
) -> None:
    """Emit one syscall invocation in the given style."""
    if style == STYLE_DIRECT:
        emit_direct(p, nr, tag)
    elif style == STYLE_SPLIT:
        emit_split(p, nr, tag)
    elif style == STYLE_STACK:
        emit_stack(p, nr, tag)
    elif style == STYLE_REG_WRAPPER:
        if not reg_wrapper:
            raise ValueError("reg-wrap style needs a wrapper name")
        emit_via_reg_wrapper(p, nr, tag, reg_wrapper)
    elif style == STYLE_STACK_WRAPPER:
        if not stack_wrapper:
            raise ValueError("stk-wrap style needs a wrapper name")
        emit_via_stack_wrapper(p, nr, tag, stack_wrapper)
    else:
        raise ValueError(f"unknown style {style!r}")
