"""Size-preserving, function-local mutations of built validation apps.

The incremental differential harness (``tests/test_incremental.py``)
needs "the same binary, rebuilt with K functions changed" — without a
compiler in the loop.  This module edits immediate operands in place:

* ``mov r32, imm32`` sites whose immediate is a *known syscall number*
  are retargeted to a different syscall number (the analysis-visible
  mutation: the report's syscall set may change);
* ``cmp`` sites get their immediate nudged by one (an analysis-neutral
  mutation: control flow and syscall sets are untouched, but the
  function's body hash — and therefore its cache key — changes).

Both rewrites keep the instruction length, so every other function's
bytes, addresses, and decode stream are bit-identical.  That is exactly
the contract the per-function cache keys on: only the mutated functions
(plus their dependency cone) may miss.

Patching happens at the *file* level: the text section's bytes are
located in the ELF image and the immediate's tail bytes are overwritten,
then the result is re-parsed and re-decoded to prove the edit landed
where intended and nothing else moved.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field

from ..cfg.partition import FunctionPartition
from ..loader.image import LoadedImage
from ..syscalls.table import SYSCALL_NAMES
from ..x86.decoder import decode, decode_all
from ..x86.insn import Immediate

#: replacement syscall numbers for mov-immediate sites: getpid(39) unless
#: the site already loads 39, then exit(60).  Both are always-known
#: numbers, so the mutated binary still analyzes cleanly.
_MOV_REPLACEMENT = (39, 60)


@dataclass(frozen=True)
class MutationSite:
    """One mutable immediate inside one function region."""

    region_start: int   # owning function region (partition start)
    addr: int           # instruction address
    mnemonic: str       # "mov" or "cmp"
    imm_size: int       # encoded immediate tail size: 4 or 1 byte
    old_value: int
    new_value: int


@dataclass
class MutationResult:
    """A mutated binary plus provenance of what changed."""

    elf_bytes: bytes
    image: LoadedImage
    changed: list[int] = field(default_factory=list)  # region starts
    sites: list[MutationSite] = field(default_factory=list)


def _imm_tail_size(insn, value: int) -> int:
    """Size of the immediate's encoded tail, or 0 when not patchable.

    The encoders emit the immediate last, so matching the raw suffix
    against the packed value proves where the bytes live.  imm32 is
    preferred; a 1-byte tail is accepted too (``cmp r64, imm8``).
    """
    raw = insn.raw
    if len(raw) >= 5:
        for fmt in ("<i", "<I"):
            try:
                if raw[-4:] == struct.pack(fmt, value):
                    return 4
            except struct.error:
                continue
    if len(raw) >= 2:
        for fmt in ("<b", "<B"):
            try:
                if raw[-1:] == struct.pack(fmt, value):
                    return 1
            except struct.error:
                continue
    return 0


def find_sites(image: LoadedImage) -> dict[int, list[MutationSite]]:
    """Mutable immediate sites, grouped by owning function region."""
    insns = decode_all(image.text_bytes, image.text_base)
    partition = FunctionPartition.from_image(image)
    sites: dict[int, list[MutationSite]] = {}
    for insn in insns:
        if insn.mnemonic not in ("mov", "cmp") or len(insn.operands) != 2:
            continue
        imm = insn.operands[1]
        if not isinstance(imm, Immediate):
            continue
        value = imm.value
        if insn.mnemonic == "mov":
            # Only retarget known syscall numbers: mutating an arbitrary
            # mov immediate could corrupt an address computation.
            if value not in SYSCALL_NAMES:
                continue
            new = _MOV_REPLACEMENT[value == _MOV_REPLACEMENT[0]]
        else:
            new = value + 1
        size = _imm_tail_size(insn, value)
        if not size:
            continue
        if size == 1 and not (-128 <= new <= 127):
            continue
        region = partition.region_containing(insn.addr)
        if region is None:
            continue
        sites.setdefault(region.start, []).append(MutationSite(
            region_start=region.start, addr=insn.addr,
            mnemonic=insn.mnemonic, imm_size=size,
            old_value=value, new_value=new,
        ))
    return sites


def mutate_program(
    elf_bytes: bytes, name: str, k: int, *, seed: int = 0,
) -> MutationResult:
    """Rebuild ``elf_bytes`` with immediates edited in ``k`` functions.

    Deterministic for a given ``(elf_bytes, k, seed)``.  ``k`` is
    clamped to the number of functions that have a mutable site; one
    site per chosen function is patched.  The mutated image is re-parsed
    and re-decoded to verify each patch (and only each patch) landed.
    """
    image = LoadedImage.from_bytes(name, elf_bytes)
    by_region = find_sites(image)
    if not by_region:
        raise ValueError(f"{name}: no mutable immediate sites")
    rng = random.Random(seed)
    region_starts = sorted(by_region)
    chosen = sorted(rng.sample(region_starts, min(k, len(region_starts))))
    return _apply(image, elf_bytes, name, by_region, chosen, rng)


def mutate_regions(
    elf_bytes: bytes, name: str, regions: list[int], *, seed: int = 0,
) -> MutationResult:
    """Rebuild ``elf_bytes`` with one immediate edited in each *chosen*
    region (cone-targeted tests: mutate exactly this callee/wrapper)."""
    image = LoadedImage.from_bytes(name, elf_bytes)
    by_region = find_sites(image)
    missing = [start for start in regions if start not in by_region]
    if missing:
        raise ValueError(
            f"{name}: no mutable immediate sites in regions "
            f"{[hex(s) for s in missing]}"
        )
    return _apply(
        image, elf_bytes, name, by_region, sorted(regions),
        random.Random(seed),
    )


def _apply(
    image: LoadedImage,
    elf_bytes: bytes,
    name: str,
    by_region: dict[int, list[MutationSite]],
    chosen: list[int],
    rng: random.Random,
) -> MutationResult:
    text_off = elf_bytes.find(image.text_bytes)
    if text_off < 0:
        raise ValueError(f"{name}: text section bytes not found in file")
    data = bytearray(elf_bytes)
    picked: list[MutationSite] = []
    for start in chosen:
        site = rng.choice(by_region[start])
        insn_off = text_off + (site.addr - image.text_base)
        insn = decode(elf_bytes, insn_off, site.addr)
        imm_off = insn_off + insn.size - site.imm_size
        fmt = {4: "<i", 1: "<b"}[site.imm_size]
        try:
            packed = struct.pack(fmt, site.new_value)
        except struct.error:
            packed = struct.pack(fmt.upper(), site.new_value)
        data[imm_off:imm_off + site.imm_size] = packed
        picked.append(site)

    mutated_bytes = bytes(data)
    mutated = LoadedImage.from_bytes(name, mutated_bytes)
    # Verify: same decode skeleton, patched immediates only.
    old = decode_all(image.text_bytes, image.text_base)
    new = decode_all(mutated.text_bytes, mutated.text_base)
    if [(i.addr, i.size, i.mnemonic) for i in old] != \
            [(i.addr, i.size, i.mnemonic) for i in new]:
        raise ValueError(f"{name}: mutation changed the decode skeleton")
    by_addr = {i.addr: i for i in new}
    for site in picked:
        imm = by_addr[site.addr].operands[1]
        if not isinstance(imm, Immediate) or imm.value != site.new_value:
            raise ValueError(
                f"{name}: patch at {site.addr:#x} did not take "
                f"(got {imm!r}, wanted {site.new_value})"
            )
    return MutationResult(
        elf_bytes=mutated_bytes, image=mutated,
        changed=list(chosen), sites=picked,
    )
