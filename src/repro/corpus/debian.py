"""The Debian-10-like corpus: 557 binaries + 59 shared libraries (§5.2).

The generator reproduces the *population structure* the paper measured,
with every attribute realised **in the binaries themselves** (never as
out-of-band flags the tools could not see):

Static executables (231, non-PIC ``ET_EXEC`` unless noted)
    * 3 pure-direct (every syscall number a visible immediate) — the only
      static binaries Chestnut's Binalyzer survives, plus
    * 1 pure-direct **static-PIE** — the single static binary SysFilter
      accepts (PIC + unwind info),
    * 4 "hard" (dense indirect-call webs + a wrapper) — B-Side's static
      timeouts,
    * 223 ordinary musl/Go/Rust/Haskell-style binaries whose embedded
      runtimes use syscall wrappers (crashing Chestnut, rejected by
      SysFilter for being non-PIC).

Dynamic executables (326, linked against the library pool)
    * 20 Go-style (stack-argument runtime wrappers) — Chestnut's dynamic
      failures,
    * 82 CFG-hard + 17 identification-hard + 13 wrapper-hard — B-Side's
      112 dynamic timeouts with the paper's 73/15/12% stage split,
    * 194 ordinary C-style binaries,
    * exactly 108 of the 326 carry ``.eh_frame`` — SysFilter's dynamic
      success population.

All numbers are the paper's Table 2 population; pass a smaller ``scale``
to produce a proportionally shrunken corpus for quick runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

from ..loader.resolve import LibraryResolver
from ..syscalls.table import SYSCALL_NUMBERS
from ..x86.insn import Memory
from ..x86.registers import EAX, RAX, RDI, RSI, RSP
from .langstyles import (
    LANGUAGE_PROFILES,
    STYLE_DIRECT,
    STYLE_REG_WRAPPER,
    STYLE_SPLIT,
    STYLE_STACK,
    STYLE_STACK_WRAPPER,
    define_reg_wrapper,
    define_stack_wrapper,
    emit_syscall,
)
from .libc import LIBC_NAME, build_libc
from .progbuilder import BuiltProgram, ProgramBuilder

#: syscalls a generated binary may draw from (realistic userland set).
_POOL = [
    name for name in (
        "read", "write", "open", "close", "stat", "fstat", "lstat", "poll",
        "lseek", "mmap", "mprotect", "munmap", "brk", "rt_sigaction",
        "rt_sigprocmask", "ioctl", "access", "pipe", "select", "dup",
        "dup2", "nanosleep", "getpid", "socket", "connect", "accept",
        "sendto", "recvfrom", "bind", "listen", "setsockopt", "getsockopt",
        "clone", "fork", "execve", "wait4", "kill", "uname",
        "fcntl", "fsync", "getdents", "getcwd", "chdir", "rename", "mkdir",
        "rmdir", "unlink", "readlink", "chmod", "chown", "umask",
        "gettimeofday", "getrlimit", "getrusage", "sysinfo", "getuid",
        "getgid", "geteuid", "getegid", "getppid",
        "epoll_create", "epoll_wait", "epoll_ctl", "openat", "getdents64",
        "set_tid_address", "clock_gettime", "clock_nanosleep", "futex",
        "accept4", "epoll_create1", "pipe2", "getrandom", "statx", "prctl",
        "arch_prctl", "gettid", "sendfile", "writev", "readv", "madvise",
        "mremap", "ftruncate", "truncate", "flock", "sigaltstack",
        "setitimer", "pread64", "pwrite64", "socketpair", "shutdown",
        "sendmsg", "recvmsg", "setrlimit", "prlimit64",
    )
]

_LIB_BASE = 0x7F20_0000_0000
_LIB_STRIDE = 0x0000_0100_0000

HARD_CFG = "cfg"
HARD_IDENT = "ident"
HARD_WRAPPER = "wrapper"


@dataclass
class CorpusBinary:
    """One corpus member with its generation attributes."""

    program: BuiltProgram
    language: str
    kind: str  # "static" | "static-pie" | "dynamic"
    hardness: str | None = None
    planned_syscalls: set[int] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def image(self):
        return self.program.image

    @property
    def is_static(self) -> bool:
        return self.kind in ("static", "static-pie")


@dataclass
class DebianCorpus:
    """The full generated corpus."""

    binaries: list[CorpusBinary]
    libraries: dict[str, BuiltProgram]

    def make_resolver(self) -> LibraryResolver:
        return LibraryResolver(library_map={
            name: prog.elf_bytes for name, prog in self.libraries.items()
        })

    @property
    def static_binaries(self) -> list[CorpusBinary]:
        return [b for b in self.binaries if b.is_static]

    @property
    def dynamic_binaries(self) -> list[CorpusBinary]:
        return [b for b in self.binaries if not b.is_static]


# ----------------------------------------------------------------------
# Library pool
# ----------------------------------------------------------------------

def _build_pool_library(index: int, rng: random.Random) -> BuiltProgram:
    """One generated shared library: a few exports, libc-backed or direct."""
    soname = f"lib{index:02d}.so"
    uses_libc = rng.random() < 0.7
    p = ProgramBuilder(
        soname,
        soname=soname,
        needed=[LIBC_NAME] if uses_libc else [],
        text_base=_LIB_BASE + index * _LIB_STRIDE,
    )
    has_wrapper = rng.random() < 0.15
    if has_wrapper:
        define_reg_wrapper(p, f"__l{index}_syscall")
    n_exports = rng.randint(3, 8)
    for e in range(n_exports):
        with p.function(f"l{index}_fn{e}", exported=True):
            for s in range(rng.randint(1, 2)):
                name = rng.choice(_POOL)
                nr = SYSCALL_NUMBERS[name]
                if uses_libc and rng.random() < 0.5:
                    p.call_import(f"c_{name}")
                elif has_wrapper and rng.random() < 0.3:
                    p.asm.mov(RDI, nr)
                    p.asm.call(f"__l{index}_syscall")
                else:
                    p.asm.mov(EAX, nr)
                    p.asm.syscall()
            p.asm.ret()
    return p.build()


# ----------------------------------------------------------------------
# Static binaries
# ----------------------------------------------------------------------

def _finish_static(p: ProgramBuilder) -> None:
    p.asm.mov(EAX, SYSCALL_NUMBERS["exit_group"])
    p.asm.xor(RDI, RDI)
    p.asm.syscall()
    p.asm.hlt()


def _emit_fptr_structure(
    p: ProgramBuilder, name: str, rng: random.Random,
) -> set[str]:
    """Function-pointer structure: a live callback dispatched indirectly
    plus a *dead* registration function taking another handler's address.

    The live callback's syscalls are part of the program's behaviour; the
    dead handler's are only reachable through the all-addresses-taken
    overestimation — the precision gap the active-addresses-taken
    refinement (§4.3) closes.  Returns the live callback's syscall names.
    """
    live = rng.sample(_POOL, 2)
    dead = rng.sample(_POOL, 3)
    with p.function(f"{name}.live_cb"):
        for sysname in live:
            p.asm.mov(EAX, SYSCALL_NUMBERS[sysname])
            p.asm.syscall()
        p.asm.ret()
    with p.function(f"{name}.dead_handler"):
        for sysname in dead:
            p.asm.mov(EAX, SYSCALL_NUMBERS[sysname])
            p.asm.syscall()
        p.asm.ret()
    with p.function(f"{name}.dead_register"):
        # Never called: takes the dead handler's address.
        p.asm.lea_rip(RSI, f"{name}.dead_handler")
        p.asm.ret()
    return set(live)


def _emit_live_dispatch(p: ProgramBuilder, name: str) -> None:
    """The live indirect call, to be emitted inside ``_start``."""
    p.asm.lea_rip(RSI, f"{name}.live_cb")
    p.asm.call_reg(RSI)


def _build_pure_direct_static(name: str, rng: random.Random, pic: bool) -> CorpusBinary:
    p = ProgramBuilder(name, pic=pic)
    count = rng.randint(22, 30)
    chosen = rng.sample(_POOL, count)
    with p.function("_start", exported=pic):
        for i, sysname in enumerate(chosen):
            emit_syscall(p, SYSCALL_NUMBERS[sysname], STYLE_DIRECT, f"{name}.{i}")
        _finish_static(p)
    p.set_entry("_start")
    planned = {SYSCALL_NUMBERS[n] for n in chosen} | {SYSCALL_NUMBERS["exit_group"]}
    return CorpusBinary(p.build(), "c-musl", "static-pie" if pic else "static",
                        planned_syscalls=planned)


def _build_normal_static(name: str, language: str, rng: random.Random) -> CorpusBinary:
    profile = LANGUAGE_PROFILES[language]
    p = ProgramBuilder(name)
    reg_wrapper = ""
    stack_wrapper = ""
    if profile["wrapper"] == "reg":
        reg_wrapper = "__rt_syscall"
        define_reg_wrapper(p, reg_wrapper)
    elif profile["wrapper"] == "stack":
        stack_wrapper = "__rt_syscall0"
        define_stack_wrapper(p, stack_wrapper)
    elif language == "haskell":
        # GHC's RTS goes through C stubs that spill the number (see
        # module docstring): model with a stack wrapper.
        stack_wrapper = "__rts_stub"
        define_stack_wrapper(p, stack_wrapper)

    count = max(12, min(55, int(rng.gauss(31, 8))))
    chosen = rng.sample(_POOL, min(count, len(_POOL)))
    styles = list(profile["styles"])
    if language == "haskell":
        styles.append(STYLE_STACK_WRAPPER)
    live_names: set[str] = set()
    has_fptr = rng.random() < 0.5
    if has_fptr:
        live_names = _emit_fptr_structure(p, name, rng)
    with p.function("_start"):
        if has_fptr:
            _emit_live_dispatch(p, name)
        for i, sysname in enumerate(chosen):
            style = rng.choice(styles)
            emit_syscall(
                p, SYSCALL_NUMBERS[sysname], style, f"{name}.{i}",
                reg_wrapper=reg_wrapper, stack_wrapper=stack_wrapper,
            )
        _finish_static(p)
    p.set_entry("_start")
    planned = {SYSCALL_NUMBERS[n] for n in set(chosen) | live_names}
    planned.add(SYSCALL_NUMBERS["exit_group"])
    return CorpusBinary(p.build(), language, "static", planned_syscalls=planned)


# ----------------------------------------------------------------------
# Hardness payloads (B-Side budget busters)
# ----------------------------------------------------------------------

def _emit_cfg_web(p: ProgramBuilder, links: int = 40) -> None:
    """A chain of functions discovered one active-addresses-taken
    iteration at a time: exceeds the CFG fixpoint budget."""
    for i in range(links):
        with p.function(f"web{i}"):
            if i + 1 < links:
                p.asm.lea_rip(RSI, f"web{i + 1}")
                p.asm.call_reg(RSI)
            p.asm.ret()


def _emit_ident_chain(p: ProgramBuilder, length: int = 530) -> None:
    """A syscall separated from its immediate by hundreds of blocks:
    exceeds the backward-search node budget."""
    p.asm.mov(EAX, SYSCALL_NUMBERS["getpid"])
    for i in range(length):
        p.asm.jmp(f"idc{i}")
        p.asm.label(f"idc{i}")
    p.asm.syscall()


def _emit_wrapper_flood(p: ProgramBuilder, count: int = 280) -> list[str]:
    """Hundreds of wrapper-candidate functions: exceeds the wrapper
    confirmation budget."""
    names = []
    for i in range(count):
        fname = f"wf{i}"
        with p.function(fname):
            p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
        names.append(fname)
    return names


def _build_hard_binary(
    name: str,
    hardness: str,
    rng: random.Random,
    *,
    dynamic: bool,
    has_eh_frame: bool,
) -> CorpusBinary:
    p = ProgramBuilder(
        name,
        pic=dynamic,
        needed=[LIBC_NAME] if dynamic else [],
        has_eh_frame=has_eh_frame,
    )
    # One register wrapper so static hard binaries also crash Chestnut.
    define_reg_wrapper(p, "__hard_syscall")

    if hardness == HARD_CFG:
        _emit_cfg_web(p)
    elif hardness == HARD_WRAPPER:
        flood = _emit_wrapper_flood(p)

    with p.function("_start", exported=dynamic):
        p.asm.mov(RDI, SYSCALL_NUMBERS["getuid"])
        p.asm.call("__hard_syscall")
        if hardness == HARD_CFG:
            p.asm.call("web0")
        elif hardness == HARD_IDENT:
            _emit_ident_chain(p)
        elif hardness == HARD_WRAPPER:
            for fname in flood:
                p.asm.call(fname)
        if dynamic:
            p.call_import("c_write")
        _finish_static(p)
    p.set_entry("_start")
    return CorpusBinary(
        p.build(), "c-musl", "dynamic" if dynamic else "static", hardness=hardness,
    )


# ----------------------------------------------------------------------
# Dynamic binaries
# ----------------------------------------------------------------------

def _build_normal_dynamic(
    name: str,
    language: str,
    rng: random.Random,
    libraries: dict[str, BuiltProgram],
    *,
    has_eh_frame: bool,
) -> CorpusBinary:
    pool_libs = [n for n in libraries if n != LIBC_NAME]
    extra_libs = rng.sample(pool_libs, min(rng.randint(0, 3), len(pool_libs)))
    needed = [LIBC_NAME] + extra_libs
    p = ProgramBuilder(name, pic=True, needed=needed, has_eh_frame=has_eh_frame)

    is_go = language == "go"
    stack_wrapper = ""
    if is_go:
        stack_wrapper = "runtime.syscall0"
        define_stack_wrapper(p, stack_wrapper)

    n_imports = max(12, min(70, int(rng.gauss(45, 11))))
    libc_names = rng.sample(_POOL, min(n_imports, len(_POOL)))
    n_direct = rng.randint(4, 10)
    direct_names = rng.sample(_POOL, n_direct)
    n_wrapper_calls = rng.randint(2, 8)
    wrapper_names = rng.sample(_POOL, n_wrapper_calls)

    planned: set[str] = set(libc_names) | set(direct_names) | set(wrapper_names)

    has_fptr = rng.random() < 0.5
    if has_fptr:
        planned |= _emit_fptr_structure(p, name, rng)

    with p.function("_start", exported=True):
        if has_fptr:
            _emit_live_dispatch(p, name)
        for sysname in libc_names:
            p.call_import(f"c_{sysname}")
        for lib in extra_libs:
            lib_prog = libraries[lib]
            exports = sorted(lib_prog.image.exported_functions)
            for export in rng.sample(exports, min(2, len(exports))):
                p.call_import(export)
        for i, sysname in enumerate(direct_names):
            if is_go:
                emit_syscall(p, SYSCALL_NUMBERS[sysname], STYLE_STACK, f"{name}.d{i}")
            else:
                style = rng.choice((STYLE_DIRECT, STYLE_SPLIT))
                emit_syscall(p, SYSCALL_NUMBERS[sysname], style, f"{name}.d{i}")
        for sysname in wrapper_names:
            if is_go:
                emit_syscall(
                    p, SYSCALL_NUMBERS[sysname], STYLE_STACK_WRAPPER,
                    f"{name}.w", stack_wrapper=stack_wrapper,
                )
            else:
                p.asm.mov(RDI, SYSCALL_NUMBERS[sysname])
                p.call_import("syscall")
        _finish_static(p)
    p.set_entry("_start")
    planned_numbers = {SYSCALL_NUMBERS[n] for n in planned}
    planned_numbers.add(SYSCALL_NUMBERS["exit_group"])
    return CorpusBinary(
        p.build(), language, "dynamic", planned_syscalls=planned_numbers,
    )


# ----------------------------------------------------------------------
# Corpus assembly
# ----------------------------------------------------------------------

def _scaled(value: int, scale: float) -> int:
    return max(1, round(value * scale)) if value else 0


@lru_cache(maxsize=4)
def make_debian_corpus(scale: float = 1.0, seed: int = 2024) -> DebianCorpus:
    """Generate the corpus (counts scaled by ``scale``, deterministic)."""
    rng = random.Random(seed)

    libraries: dict[str, BuiltProgram] = {LIBC_NAME: build_libc()}
    n_libs = _scaled(58, scale)
    for i in range(n_libs):
        lib = _build_pool_library(i, rng)
        libraries[lib.name] = lib

    binaries: list[CorpusBinary] = []

    # ---- static population -------------------------------------------
    n_pure = min(3, _scaled(3, scale))
    for i in range(n_pure):
        binaries.append(_build_pure_direct_static(f"st-pure{i}", rng, pic=False))
    binaries.append(_build_pure_direct_static("st-pie0", rng, pic=True))
    n_hard_static = _scaled(4, scale)
    for i in range(n_hard_static):
        binaries.append(_build_hard_binary(
            f"st-hard{i}", HARD_CFG, rng, dynamic=False, has_eh_frame=True,
        ))
    n_normal_static = _scaled(231, scale) - n_pure - 1 - n_hard_static
    static_langs = ["c-musl", "go", "rust", "haskell"]
    for i in range(max(0, n_normal_static)):
        language = static_langs[i % len(static_langs)]
        binaries.append(_build_normal_static(f"st-{language}-{i}", language, rng))

    # ---- dynamic population ---------------------------------------------
    n_dynamic = _scaled(326, scale)
    n_go = _scaled(20, scale)
    n_hard_cfg = _scaled(82, scale)
    n_hard_ident = _scaled(17, scale)
    n_hard_wrapper = _scaled(13, scale)
    n_normal_dyn = max(0, n_dynamic - n_go - n_hard_cfg - n_hard_ident - n_hard_wrapper)
    n_eh_frame = _scaled(108, scale)

    dyn_plan: list[tuple[str, str | None]] = (
        [("go", None)] * n_go
        + [("c-glibc", HARD_CFG)] * n_hard_cfg
        + [("c-glibc", HARD_IDENT)] * n_hard_ident
        + [("c-glibc", HARD_WRAPPER)] * n_hard_wrapper
        + [
            ("c-glibc" if i % 3 else "c-musl", None)
            for i in range(n_normal_dyn)
        ]
    )
    rng.shuffle(dyn_plan)
    # Exactly n_eh_frame dynamic binaries carry unwind info.
    eh_flags = [True] * n_eh_frame + [False] * (len(dyn_plan) - n_eh_frame)
    rng.shuffle(eh_flags)

    for i, ((language, hardness), eh) in enumerate(zip(dyn_plan, eh_flags)):
        name = f"dyn-{language}-{i}"
        if hardness is not None:
            binaries.append(_build_hard_binary(
                name, hardness, rng, dynamic=True, has_eh_frame=eh,
            ))
        else:
            binaries.append(_build_normal_dynamic(
                name, language, rng, libraries, has_eh_frame=eh,
            ))

    return DebianCorpus(binaries=binaries, libraries=libraries)
