"""High-level program builder: assembles complete ELF binaries.

``ProgramBuilder`` sits on top of the assembler and the ELF writer and
produces :class:`BuiltProgram` objects — the unit every analysis, emulator
run and benchmark consumes.  It knows about:

* function definition with automatically-sized symbols,
* a data segment (byte blobs, quad-word tables referencing code labels),
* imports: GOT slots + relocations (+ optional PLT stubs),
* exports (dynamic symbol table entries),
* entry-point plumbing.

The builder makes *no* policy decisions about code shape; the language
styles (:mod:`repro.corpus.langstyles`) and application profiles
(:mod:`repro.corpus.apps`) drive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..elf.structs import ET_DYN, ET_EXEC, page_align
from ..elf.writer import ElfImageSpec, RelocSpec, SymbolSpec, write_elf
from ..errors import AsmError
from ..loader.image import LoadedImage
from ..x86.asm import Assembler
from ..x86.insn import Memory

#: Sentinel payload kinds for deferred data items.
_BYTES = "bytes"
_QUADS = "quads"


@dataclass(frozen=True, slots=True)
class QuadRef:
    """A quad-word data cell referring to a code/data label (+addend)."""

    label: str
    addend: int = 0


@dataclass(slots=True)
class _DataItem:
    label: str
    kind: str
    payload: bytes | list
    align: int = 8


@dataclass(slots=True)
class _FunctionRecord:
    name: str
    start_label: str
    end_label: str
    exported: bool


@dataclass
class BuiltProgram:
    """A finished binary: raw ELF bytes plus the parsed image."""

    name: str
    elf_bytes: bytes
    image: LoadedImage
    labels: dict[int, str] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def is_static(self) -> bool:
        return self.image.is_static_executable

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            f.write(self.elf_bytes)


class ProgramBuilder:
    """Accumulates functions, data and imports; emits an ELF image."""

    def __init__(
        self,
        name: str,
        *,
        pic: bool = False,
        soname: str = "",
        needed: list[str] | None = None,
        text_base: int = 0x401000,
        has_eh_frame: bool = True,
    ):
        if text_base % 0x1000:
            raise AsmError("text base must be page-aligned")
        self.name = name
        self.pic = pic or bool(soname)
        self.soname = soname
        self.has_eh_frame = has_eh_frame
        self.needed = list(needed or [])
        self.asm = Assembler(base=text_base)
        self.text_base = text_base
        self._functions: list[_FunctionRecord] = []
        self._open_function: _FunctionRecord | None = None
        self._data_items: list[_DataItem] = []
        self._data_labels: set[str] = set()
        self._imports: list[str] = []
        self._entry_label: str | None = None
        self.meta: dict = {}

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def begin_function(self, name: str, exported: bool = False) -> None:
        if self._open_function is not None:
            raise AsmError(
                f"function {self._open_function.name!r} is still open"
            )
        self.asm.align(16)
        self.asm.label(name)
        self._open_function = _FunctionRecord(
            name=name, start_label=name, end_label=f"{name}.__end",
            exported=exported,
        )

    def end_function(self) -> None:
        if self._open_function is None:
            raise AsmError("no function is open")
        self.asm.label(self._open_function.end_label)
        self._functions.append(self._open_function)
        self._open_function = None

    def function(self, name: str, exported: bool = False):
        """Context manager: ``with p.function("main"): p.asm...``"""
        return _FunctionScope(self, name, exported)

    def set_entry(self, label: str) -> None:
        self._entry_label = label

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------

    def add_bytes(self, label: str, payload: bytes, align: int = 8) -> None:
        self._add_data(_DataItem(label, _BYTES, payload, align))

    def add_quads(self, label: str, cells: list) -> None:
        """A table of 8-byte cells: ints, label names, or :class:`QuadRef`."""
        normalised = [
            QuadRef(c) if isinstance(c, str) else c
            for c in cells
        ]
        self._add_data(_DataItem(label, _QUADS, normalised))

    def add_zeroed(self, label: str, size: int, align: int = 8) -> None:
        self.add_bytes(label, b"\x00" * size, align)

    def _add_data(self, item: _DataItem) -> None:
        if item.label in self._data_labels:
            raise AsmError(f"duplicate data label {item.label!r}")
        self._data_labels.add(item.label)
        self._data_items.append(item)

    # ------------------------------------------------------------------
    # Imports (GOT + optional PLT stub)
    # ------------------------------------------------------------------

    @staticmethod
    def got_label(symbol: str) -> str:
        return f"got.{symbol}"

    @staticmethod
    def plt_label(symbol: str) -> str:
        return f"plt.{symbol}"

    def add_import(self, symbol: str) -> None:
        """Declare an imported symbol and allocate its GOT slot."""
        if symbol in self._imports:
            return
        self._imports.append(symbol)
        self.add_quads(self.got_label(symbol), [0])

    def make_plt_stub(self, symbol: str) -> None:
        """Emit ``plt.<symbol>: jmp [rip + got.<symbol>]``."""
        self.add_import(symbol)
        with self.function(self.plt_label(symbol)):
            self.asm.emit(
                "jmp", _rip_placeholder(self, self.got_label(symbol))
            )

    def call_import(self, symbol: str) -> None:
        """Emit a direct external call: ``call [rip + got.<symbol>]``."""
        self.add_import(symbol)
        self.asm.emit("call", _rip_placeholder(self, self.got_label(symbol)))

    def call_plt(self, symbol: str) -> None:
        """Emit ``call plt.<symbol>`` (stub must exist or be created later)."""
        self.add_import(symbol)
        self.asm.call(self.plt_label(symbol))

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self) -> BuiltProgram:
        if self._open_function is not None:
            raise AsmError(f"function {self._open_function.name!r} never closed")

        # Data layout is size-only, so compute label offsets first.
        data_offsets: dict[str, int] = {}
        cursor = 0
        for item in self._data_items:
            cursor = (cursor + item.align - 1) & ~(item.align - 1)
            data_offsets[item.label] = cursor
            if item.kind == _BYTES:
                cursor += len(item.payload)
            else:
                cursor += 8 * len(item.payload)
        data_size = cursor

        # Trial assembly with placeholder extern values to learn code size.
        placeholder = {label: self.text_base for label in data_offsets}
        self.asm.assemble(externs=placeholder)
        code_size = self.asm.size

        data_vaddr = page_align(self.text_base + code_size) + 0x1000 if data_size else 0
        externs = {
            label: data_vaddr + off for label, off in data_offsets.items()
        }
        text = self.asm.assemble(externs=externs)
        labels = self.asm.labels()

        # Serialise data cells now that every label has an address.
        data = bytearray(data_size)
        resolve = dict(externs)
        resolve.update(labels)
        for item in self._data_items:
            off = data_offsets[item.label]
            if item.kind == _BYTES:
                data[off:off + len(item.payload)] = item.payload
                continue
            for i, cell in enumerate(item.payload):
                if isinstance(cell, QuadRef):
                    if cell.label not in resolve:
                        raise AsmError(f"quad ref to unknown label {cell.label!r}")
                    value = resolve[cell.label] + cell.addend
                else:
                    value = int(cell)
                data[off + 8 * i:off + 8 * (i + 1)] = (value & (2**64 - 1)).to_bytes(8, "little")

        # Symbols.
        symbols: list[SymbolSpec] = []
        for fn in self._functions:
            start = labels[fn.start_label]
            size = labels[fn.end_label] - start
            symbols.append(SymbolSpec(
                fn.name, start, size, "func", "global",
                defined=True, exported=fn.exported,
            ))
        for item in self._data_items:
            size = (len(item.payload) if item.kind == _BYTES else 8 * len(item.payload))
            symbols.append(SymbolSpec(
                item.label, externs[item.label], size, "object", "local",
            ))
        for symbol in self._imports:
            symbols.append(SymbolSpec(symbol, 0, 0, "func", "global", defined=False))

        relocations = [
            RelocSpec(externs[self.got_label(sym)], sym) for sym in self._imports
        ]

        entry = 0
        if self._entry_label is not None:
            entry = labels[self._entry_label]

        spec = ElfImageSpec(
            elf_type=ET_DYN if self.pic else ET_EXEC,
            text_vaddr=self.text_base,
            text=text,
            data_vaddr=data_vaddr,
            data=bytes(data),
            entry=entry,
            soname=self.soname,
            needed=self.needed,
            symbols=symbols,
            relocations=relocations,
            has_eh_frame=self.has_eh_frame,
        )
        elf_bytes = write_elf(spec)
        image = LoadedImage.from_bytes(self.name, elf_bytes)
        return BuiltProgram(
            name=self.name,
            elf_bytes=elf_bytes,
            image=image,
            labels={addr: label for label, addr in labels.items()},
            meta=dict(self.meta),
        )


class _FunctionScope:
    def __init__(self, builder: ProgramBuilder, name: str, exported: bool):
        self._builder = builder
        self._name = name
        self._exported = exported

    def __enter__(self) -> Assembler:
        self._builder.begin_function(self._name, self._exported)
        return self._builder.asm

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._builder.end_function()


def _rip_placeholder(builder: ProgramBuilder, label: str):
    """A RIP-relative memory operand whose target is an extern data label."""
    from ..x86.asm import LabelRef, _RipMem

    return _RipMem(LabelRef(label, "rip"))
