"""Filter generation: seccomp allow-lists, phase policies, Docker profiles."""

from .docker import (
    parse_profile,
    profile_from_filter,
    profile_from_report,
    render_profile,
)
from .policy import PhasePolicy, protected_against
from .seccomp import ACTION_ALLOW, ACTION_KILL, BpfInsn, FilterProgram

__all__ = [
    "FilterProgram",
    "BpfInsn",
    "ACTION_ALLOW",
    "ACTION_KILL",
    "PhasePolicy",
    "protected_against",
    "profile_from_filter",
    "profile_from_report",
    "render_profile",
    "parse_profile",
]
