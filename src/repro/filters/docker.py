"""OCI/Docker seccomp profile export.

The deployment artifact the paper's motivating scenario needs (§1: a
cloud provider replacing Docker's generic 44-syscall denylist): analysis
reports become ``seccomp.json`` profiles consumable by
``docker run --security-opt seccomp=profile.json`` — the same schema
Docker/Moby and the OCI runtime spec use.
"""

from __future__ import annotations

import json

from ..core.report import AnalysisReport
from ..syscalls.table import ALL_SYSCALLS, name_of
from .seccomp import FilterProgram

#: OCI seccomp actions
ACT_ALLOW = "SCMP_ACT_ALLOW"
ACT_ERRNO = "SCMP_ACT_ERRNO"
ACT_KILL = "SCMP_ACT_KILL_PROCESS"

#: default architecture list for x86-64 profiles
_ARCHES = ["SCMP_ARCH_X86_64"]


def profile_from_filter(
    filter_program: FilterProgram,
    default_action: str = ACT_ERRNO,
) -> dict:
    """Build an OCI seccomp profile document from an allow-list filter."""
    return {
        "defaultAction": default_action,
        "architectures": list(_ARCHES),
        "syscalls": [
            {
                "names": sorted(name_of(nr) for nr in filter_program.allowed),
                "action": ACT_ALLOW,
            }
        ],
    }


def profile_from_report(
    report: AnalysisReport,
    default_action: str = ACT_ERRNO,
) -> dict:
    """Derive a profile straight from an analysis report (sound on failure)."""
    return profile_from_filter(FilterProgram.from_report(report), default_action)


def render_profile(profile: dict) -> str:
    """Serialise a profile as Docker-compatible JSON."""
    return json.dumps(profile, indent=2)


def parse_profile(text: str) -> FilterProgram:
    """Parse a Docker seccomp JSON profile back into a filter.

    Only allow-list profiles (default deny + SCMP_ACT_ALLOW entries) are
    supported, which is what this package emits.
    """
    from ..syscalls.table import SYSCALL_NUMBERS

    doc = json.loads(text)
    if doc.get("defaultAction") == ACT_ALLOW:
        return FilterProgram.allow_list(ALL_SYSCALLS)
    allowed: set[int] = set()
    for entry in doc.get("syscalls", []):
        if entry.get("action") != ACT_ALLOW:
            continue
        for sysname in entry.get("names", []):
            nr = SYSCALL_NUMBERS.get(sysname)
            if nr is not None:
                allowed.add(nr)
    return FilterProgram.allow_list(allowed)


def docker_default_profile_size() -> int:
    """Syscalls Docker's stock profile blocks (~44 of 350+, per §1).

    Used by examples/benches to contrast generic vs per-application
    policies.
    """
    return 44
