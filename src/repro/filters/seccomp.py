"""Seccomp-style filter programs.

A :class:`FilterProgram` is the artifact a provider would install from an
analysis report: an allow-list over syscall numbers compiled into a small
cBPF-like instruction sequence (load nr, compare, allow/kill) — the same
shape libseccomp generates.  The emulated kernel executes the program for
every syscall, so validation experiments observe real enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.report import AnalysisReport
from ..syscalls.table import ALL_SYSCALLS, name_of

ACTION_ALLOW = "allow"
ACTION_KILL = "kill"


@dataclass(frozen=True, slots=True)
class BpfInsn:
    """One pseudo-cBPF instruction."""

    op: str  # "ld_nr" | "jeq" | "ret"
    k: int = 0
    action: str = ""

    def render(self) -> str:
        if self.op == "ld_nr":
            return "ld [nr]"
        if self.op == "jeq":
            return f"jeq #{self.k} allow  ; {name_of(self.k)}"
        return f"ret {self.action}"


@dataclass
class FilterProgram:
    """An allow-list filter compiled to a linear cBPF-like program."""

    allowed: frozenset[int]
    default_action: str = ACTION_KILL
    insns: list[BpfInsn] = field(default_factory=list)

    @classmethod
    def allow_list(cls, allowed, default_action: str = ACTION_KILL) -> "FilterProgram":
        allowed = frozenset(allowed)
        insns = [BpfInsn("ld_nr")]
        for nr in sorted(allowed):
            insns.append(BpfInsn("jeq", k=nr))
        insns.append(BpfInsn("ret", action=default_action))
        insns.append(BpfInsn("ret", action=ACTION_ALLOW))
        return cls(allowed=allowed, default_action=default_action, insns=insns)

    @classmethod
    def from_report(cls, report: AnalysisReport) -> "FilterProgram":
        """Derive the strictest *sound* filter from an analysis report.

        An unsuccessful or incomplete analysis cannot justify blocking
        anything: the filter degenerates to allow-all (this mirrors how a
        provider must treat a tool timeout).
        """
        if not report.success or not report.complete:
            return cls.allow_list(ALL_SYSCALLS)
        return cls.allow_list(report.syscalls)

    def permits(self, nr: int) -> bool:
        return nr in self.allowed

    def blocks(self, nr: int) -> bool:
        return not self.permits(nr)

    @property
    def n_blocked(self) -> int:
        return len(ALL_SYSCALLS - self.allowed)

    def execute(self, nr: int) -> str:
        """Interpret the cBPF program for one syscall number."""
        for insn in self.insns:
            if insn.op == "jeq" and insn.k == nr:
                return ACTION_ALLOW
            if insn.op == "ret":
                return insn.action
        return self.default_action

    def render(self) -> str:
        """Human-readable listing (what `seccomp-tools dump` would show)."""
        return "\n".join(i.render() for i in self.insns)
