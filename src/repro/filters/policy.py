"""Whole-program and phase-based filtering policies.

``PhasePolicy`` carries one filter per phase plus the transition map; the
emulated kernel consults it through a hook so that phase changes happen on
the observed syscall stream — the kernel-side enforcement §4.7 sketches
(monitoring syscall type at invocation time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..phases.automaton import PhaseAutomaton, PhaseTracker
from ..syscalls.table import ALL_SYSCALLS
from .seccomp import FilterProgram


@dataclass
class PhasePolicy:
    """Per-phase allow-lists derived from a phase automaton.

    ``extra_allowed`` holds syscalls granted in every phase — required for
    soundness when the program loads code the automaton cannot place
    (dlopen modules, §4.5).
    """

    automaton: PhaseAutomaton
    use_propagated: bool = True
    filters: dict[int, FilterProgram] = field(default_factory=dict)
    extra_allowed: frozenset[int] = frozenset()

    @classmethod
    def from_automaton(
        cls,
        automaton: PhaseAutomaton,
        use_propagated: bool = True,
        extra_allowed: set[int] | None = None,
    ) -> "PhasePolicy":
        extra = frozenset(extra_allowed or ())
        policy = cls(
            automaton=automaton, use_propagated=use_propagated,
            extra_allowed=extra,
        )
        for pid in automaton.phases:
            allowed = (
                automaton.propagated[pid]
                if use_propagated and automaton.propagated is not None
                else automaton.phases[pid].allowed
            )
            policy.filters[pid] = FilterProgram.allow_list(allowed | extra)
        return policy

    def make_kernel_hook(self):
        """A ``filter_hook`` for :class:`repro.emu.kernel.EmulatedKernel`.

        Tracks the current phase across syscalls; returns False (kill) on
        a syscall outside the current phase's allow-list.
        """
        tracker = PhaseTracker(
            self.automaton,
            use_propagated=self.use_propagated,
            extra_allowed=set(self.extra_allowed),
        )

        def hook(kernel, nr: int) -> bool:
            return tracker.observe(nr)

        hook.tracker = tracker
        return hook

    def average_allowed(self) -> float:
        if not self.filters:
            return 0.0
        return sum(len(f.allowed) for f in self.filters.values()) / len(self.filters)

    def strictness_gain_over(self, whole_program: FilterProgram) -> float:
        """Average reduction in allowed syscalls vs. a vanilla filter (§5.4)."""
        baseline = len(whole_program.allowed)
        if baseline == 0:
            return 0.0
        return 1.0 - (self.average_allowed() / baseline)


def protected_against(filter_program: FilterProgram, trigger_syscalls) -> bool:
    """Whether a filter precludes a CVE triggered by ``trigger_syscalls``.

    Following §5.5: a program is protected when *at least one* syscall the
    exploit requires is blocked by the filter.
    """
    return any(filter_program.blocks(nr) for nr in trigger_syscalls)
