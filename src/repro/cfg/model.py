"""Control-flow graph containers: basic blocks, functions, the CFG itself.

Edge kinds
----------

``fall``     sequential fall-through (after jcc / syscall / call-return site)
``jump``     direct jmp/jcc target
``call``     direct or resolved-indirect call to a function entry
``callret``  from a block ending in ``call`` to its return site; forward
             symbolic execution runs *through* the callee, so for backward
             search the call block is the return site's predecessor
``icall``    resolved indirect call/jmp edge (via addresses taken)
``ext``      call/jmp into another image via a GOT import (label = symbol)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..x86.insn import Instruction

EDGE_FALL = "fall"
EDGE_JUMP = "jump"
EDGE_CALL = "call"
EDGE_CALLRET = "callret"
EDGE_ICALL = "icall"
EDGE_EXT = "ext"


@dataclass(frozen=True, slots=True)
class Edge:
    """A CFG edge from ``src`` block to ``dst`` block (addresses)."""

    src: int
    dst: int
    kind: str
    label: str = ""  # symbol name for EDGE_EXT


@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    addr: int
    insns: list[Instruction] = field(default_factory=list)
    function: int = 0  # entry address of the containing function

    @property
    def end(self) -> int:
        last = self.insns[-1]
        return last.addr + last.size

    @property
    def size(self) -> int:
        return self.end - self.addr

    @property
    def terminator(self) -> Instruction:
        return self.insns[-1]

    @property
    def has_syscall(self) -> bool:
        return any(i.is_syscall for i in self.insns)

    @property
    def ends_in_indirect_branch(self) -> bool:
        return self.terminator.is_indirect_branch

    @property
    def ends_in_call(self) -> bool:
        return self.terminator.is_call

    @property
    def ends_in_ret(self) -> bool:
        return self.terminator.is_ret

    def __repr__(self) -> str:
        return f"<BB {self.addr:#x}-{self.end:#x} ({len(self.insns)} insns)>"


@dataclass(slots=True)
class FunctionInfo:
    """A function: entry address, extent, and its basic blocks."""

    entry: int
    end: int
    name: str = ""
    block_addrs: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<Fn {self.name or hex(self.entry)} {self.entry:#x}-{self.end:#x}>"


class CFG:
    """Basic-block CFG of one image, with typed edges both ways."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.functions: dict[int, FunctionInfo] = {}
        self._succs: dict[int, list[Edge]] = {}
        self._preds: dict[int, list[Edge]] = {}
        #: blocks ending in an unresolved indirect call/jmp
        self.indirect_sites: set[int] = set()
        #: addresses taken discovered in the image (all, not just active)
        self.addresses_taken: set[int] = set()
        #: external (cross-image) edges: block addr -> symbol names called
        self.external_calls: dict[int, list[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_block(self, block: BasicBlock) -> None:
        self.blocks[block.addr] = block
        self._succs.setdefault(block.addr, [])
        self._preds.setdefault(block.addr, [])

    def add_edge(self, src: int, dst: int, kind: str, label: str = "") -> bool:
        """Insert an edge; returns False if it already existed."""
        edge = Edge(src, dst, kind, label)
        existing = self._succs.setdefault(src, [])
        if edge in existing:
            return False
        existing.append(edge)
        self._preds.setdefault(dst, []).append(edge)
        return True

    def add_external_call(self, src: int, symbol: str) -> None:
        self.external_calls.setdefault(src, [])
        if symbol not in self.external_calls[src]:
            self.external_calls[src].append(symbol)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successors(self, addr: int, kinds: tuple[str, ...] | None = None) -> list[Edge]:
        edges = self._succs.get(addr, [])
        if kinds is None:
            return list(edges)
        return [e for e in edges if e.kind in kinds]

    def predecessors(self, addr: int, kinds: tuple[str, ...] | None = None) -> list[Edge]:
        edges = self._preds.get(addr, [])
        if kinds is None:
            return list(edges)
        return [e for e in edges if e.kind in kinds]

    def block_at(self, addr: int) -> BasicBlock | None:
        return self.blocks.get(addr)

    def block_containing(self, addr: int) -> BasicBlock | None:
        """The block whose address range covers ``addr`` (linear scan fallback)."""
        if addr in self.blocks:
            return self.blocks[addr]
        for block in self.blocks.values():
            if block.addr <= addr < block.end:
                return block
        return None

    def function_of_block(self, addr: int) -> FunctionInfo | None:
        block = self.blocks.get(addr)
        if block is None:
            return None
        return self.functions.get(block.function)

    def syscall_blocks(self) -> list[BasicBlock]:
        return [b for b in self.blocks.values() if b.has_syscall]

    def call_sites_of(self, func_entry: int) -> list[Edge]:
        """Edges calling into the function whose entry is ``func_entry``."""
        return self.predecessors(func_entry, kinds=(EDGE_CALL, EDGE_ICALL))

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self._succs.values())

    def total_block_bytes(self, addrs: set[int] | None = None) -> int:
        """Summed size in bytes of the given blocks (all blocks if None)."""
        if addrs is None:
            return sum(b.size for b in self.blocks.values())
        return sum(self.blocks[a].size for a in addrs if a in self.blocks)

    def summary(self) -> dict:
        """Deterministic JSON-able summary of the recovered graph.

        This is the ``cfg`` artifact payload the analysis pipeline
        persists per binary: enough to inspect and diff a recovery
        (block/edge/function counts, indirect-call surface, addresses
        taken, external-call symbols) without serialising every block.
        """
        return {
            "n_blocks": self.n_blocks,
            "n_edges": self.n_edges,
            "n_functions": len(self.functions),
            "n_syscall_blocks": sum(
                1 for b in self.blocks.values() if b.has_syscall
            ),
            "indirect_sites": sorted(self.indirect_sites),
            "addresses_taken": sorted(self.addresses_taken),
            "external_symbols": sorted({
                symbol
                for symbols in self.external_calls.values()
                for symbol in symbols
            }),
        }
