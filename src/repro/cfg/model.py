"""Control-flow graph containers: basic blocks, functions, the CFG itself.

Edge kinds
----------

``fall``     sequential fall-through (after jcc / syscall / call-return site)
``jump``     direct jmp/jcc target
``call``     direct or resolved-indirect call to a function entry
``callret``  from a block ending in ``call`` to its return site; forward
             symbolic execution runs *through* the callee, so for backward
             search the call block is the return site's predecessor
``icall``    resolved indirect call/jmp edge (via addresses taken)
``ext``      call/jmp into another image via a GOT import (label = symbol)
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ..x86.insn import Instruction

EDGE_FALL = "fall"
EDGE_JUMP = "jump"
EDGE_CALL = "call"
EDGE_CALLRET = "callret"
EDGE_ICALL = "icall"
EDGE_EXT = "ext"

#: intra-image flow edge kinds (everything but cross-image ``ext``,
#: which never enters the edge lists — external calls are tracked in
#: :attr:`CFG.external_calls`)
FLOW_KINDS = (EDGE_FALL, EDGE_JUMP, EDGE_CALL, EDGE_CALLRET, EDGE_ICALL)
_FLOW_KIND_SET = frozenset(FLOW_KINDS)


class Edge:
    """A CFG edge from ``src`` block to ``dst`` block (addresses).

    Hand-written slotted class (dense indirect-call webs create tens of
    thousands of these per refinement round; the frozen-dataclass
    constructor was measurable).  Equality/hash/repr match the original
    dataclass semantics.
    """

    __slots__ = ("src", "dst", "kind", "label")

    def __init__(self, src: int, dst: int, kind: str, label: str = ""):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.label = label  # symbol name for EDGE_EXT

    def __eq__(self, other) -> bool:
        return (
            type(other) is Edge
            and self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, self.kind, self.label))

    def __repr__(self) -> str:
        return (
            f"Edge(src={self.src!r}, dst={self.dst!r}, "
            f"kind={self.kind!r}, label={self.label!r})"
        )


@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    addr: int
    insns: list[Instruction] = field(default_factory=list)
    function: int = 0  # entry address of the containing function

    @property
    def end(self) -> int:
        last = self.insns[-1]
        return last.addr + last.size

    @property
    def size(self) -> int:
        return self.end - self.addr

    @property
    def terminator(self) -> Instruction:
        return self.insns[-1]

    @property
    def has_syscall(self) -> bool:
        return any(i.is_syscall for i in self.insns)

    @property
    def ends_in_indirect_branch(self) -> bool:
        return self.terminator.is_indirect_branch

    @property
    def ends_in_call(self) -> bool:
        return self.terminator.is_call

    @property
    def ends_in_ret(self) -> bool:
        return self.terminator.is_ret

    def __repr__(self) -> str:
        return f"<BB {self.addr:#x}-{self.end:#x} ({len(self.insns)} insns)>"


@dataclass(slots=True)
class FunctionInfo:
    """A function: entry address, extent, and its basic blocks."""

    entry: int
    end: int
    name: str = ""
    block_addrs: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<Fn {self.name or hex(self.entry)} {self.entry:#x}-{self.end:#x}>"


class CFGIndex:
    """Frozen dense view of one :class:`CFG` snapshot.

    The analysis kernel's inner loops — reachability sweeps, the §4.3
    active-addresses-taken fixpoint, per-site backward searches — ask the
    same few questions thousands of times per image.  Answering them off
    the mutable dict-of-edge-lists representation meant re-filtering and
    re-allocating on every step.  The index answers them from dense,
    precomputed structures instead:

    * blocks get **dense integer ids** in sorted-address order
      (``addrs[i]`` <-> ``idx_of[addr]``), so traversals can use flat
      lists and byte-per-block bitsets rather than address sets;
    * ``flow_succ[i]`` / ``flow_pred[i]`` are the flow-edge adjacency
      as plain id lists (no Edge objects, no kind filtering per visit);
    * ``insn_at`` / ``insn_block`` map every instruction address to its
      :class:`Instruction` / containing block — shared by the symbolic
      engine's fetch path and the backward-search driver, which
      previously rebuilt this map per identified site;
    * ``syscall_addrs`` caches the syscall-bearing blocks;
    * ``starts`` (+ parallel ``ends``) support O(log n) containment
      lookups via bisect.

    Instances are built lazily by :attr:`CFG.index` and invalidated by
    any structural mutation (``add_block`` / ``add_edge``), so code that
    alternates mutation and queries — the fixpoint refinement — always
    sees a current view.  Block instruction lists are assumed immutable
    once edges exist (true for the builder, which adds all blocks and
    instructions before wiring edges).
    """

    __slots__ = (
        "addrs", "idx_of", "starts", "ends", "flow_succ", "flow_pred",
        "function_of", "insn_at", "insn_block", "syscall_addrs",
    )

    def __init__(self, cfg: "CFG", blocks_view: "_BlockIndex") -> None:
        # Block-level structures are borrowed from the (separately
        # cached) blocks view: adding an edge invalidates only the
        # adjacency below, not the instruction maps.
        addrs = blocks_view.addrs
        idx_of = blocks_view.idx_of
        self.addrs = addrs
        self.idx_of = idx_of
        self.starts = addrs  # sorted block starts (bisect key)
        self.ends = blocks_view.ends
        self.function_of = blocks_view.function_of
        self.insn_at = blocks_view.insn_at
        self.insn_block = blocks_view.insn_block
        self.syscall_addrs = blocks_view.syscall_addrs

        flow_succ: list[list[int]] = [[] for __ in addrs]
        flow_pred: list[list[int]] = [[] for __ in addrs]
        succs = cfg._succs
        for i, addr in enumerate(addrs):
            row = flow_succ[i]
            for edge in succs.get(addr, ()):
                if edge.kind in _FLOW_KIND_SET:
                    j = idx_of.get(edge.dst)
                    if j is not None:
                        row.append(j)
                        flow_pred[j].append(i)
        self.flow_succ = flow_succ
        self.flow_pred = flow_pred

    def reachable_seen(self, roots) -> bytearray:
        """Byte-per-block bitset of ids reachable from ``roots`` (addrs)."""
        seen = bytearray(len(self.addrs))
        idx_of = self.idx_of
        stack = []
        for addr in roots:
            i = idx_of.get(addr)
            if i is not None and not seen[i]:
                seen[i] = 1
                stack.append(i)
        flow_succ = self.flow_succ
        pop = stack.pop
        push = stack.append
        while stack:
            for j in flow_succ[pop()]:
                if not seen[j]:
                    seen[j] = 1
                    push(j)
        return seen

    def block_containing(self, addr: int) -> int | None:
        """Start address of the block covering ``addr`` (bisect), or None."""
        i = bisect_right(self.starts, addr) - 1
        if i >= 0 and addr < self.ends[i]:
            return self.starts[i]
        return None

    def closure_union(self, annot_by_addr: dict) -> list[frozenset]:
        """Per-block closure of one annotation map (see :meth:`closure_unions`)."""
        return self.closure_unions((annot_by_addr,))[0]

    def closure_unions(self, annot_maps) -> list[list[frozenset]]:
        """Per-block closures of annotations over flow reachability.

        Given per-block annotation sets (e.g. identified syscall numbers,
        external symbols called), returns one closure list per input map
        with ``closure[i] = union of annotations over every block
        reachable from block i`` — equivalent to running one reachability
        sweep per block and unioning, but computed in a single Tarjan SCC
        condensation pass (components share one frozenset; a component's
        closure folds in its successors', which the pop order guarantees
        are already final).  All maps are folded in the same DFS, whose
        bookkeeping dominates the cost.

        Library interface construction uses this to answer "which
        syscalls / imports does *each* export reach" without one BFS per
        exported function.
        """
        n = len(self.addrs)
        succ = self.flow_succ
        addrs = self.addrs
        empty: frozenset = frozenset()
        n_maps = len(annot_maps)
        owns: list[list] = [[None] * n for __ in range(n_maps)]
        for m, annot_by_addr in enumerate(annot_maps):
            own = owns[m]
            for i in range(n):
                a = annot_by_addr.get(addrs[i])
                if a:
                    own[i] = a
        closures: list[list[frozenset]] = [[empty] * n for __ in range(n_maps)]
        visit_index = [-1] * n
        low = [0] * n
        on_stack = bytearray(n)
        comp_of = [-1] * n
        scc_stack: list[int] = []
        counter = 0
        next_comp = 0
        for root in range(n):
            if visit_index[root] != -1:
                continue
            work: list[list] = [[root, 0]]
            while work:
                frame = work[-1]
                v, child_pos = frame
                if child_pos == 0:
                    visit_index[v] = low[v] = counter
                    counter += 1
                    scc_stack.append(v)
                    on_stack[v] = 1
                row = succ[v]
                descended = False
                while child_pos < len(row):
                    w = row[child_pos]
                    child_pos += 1
                    if visit_index[w] == -1:
                        frame[1] = child_pos
                        work.append([w, 0])
                        descended = True
                        break
                    if on_stack[w] and visit_index[w] < low[v]:
                        low[v] = visit_index[w]
                if descended:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low[v] < low[parent]:
                        low[parent] = low[v]
                if low[v] == visit_index[v]:
                    # Pop one strongly-connected component rooted at v.
                    members = []
                    while True:
                        w = scc_stack.pop()
                        on_stack[w] = 0
                        comp_of[w] = next_comp
                        members.append(w)
                        if w == v:
                            break
                    cid = next_comp
                    next_comp += 1
                    for m in range(n_maps):
                        own = owns[m]
                        closure = closures[m]
                        acc: set = set()
                        for w in members:
                            if own[w]:
                                acc.update(own[w])
                            for x in succ[w]:
                                if comp_of[x] != cid:
                                    acc.update(closure[x])
                        result = frozenset(acc) if acc else empty
                        for w in members:
                            closure[w] = result
        return closures


class _BlockIndex:
    """Block-level half of the index: everything derivable from the
    block set alone (instruction maps, bisect arrays).  Cached apart
    from the edge adjacency because the §4.3 fixpoint adds thousands of
    edges between sweeps — instruction maps must not be rebuilt on
    every round."""

    __slots__ = (
        "addrs", "idx_of", "ends", "function_of", "insn_at", "insn_block",
        "syscall_addrs",
    )

    def __init__(self, cfg: "CFG") -> None:
        blocks = cfg.blocks
        addrs = sorted(blocks)
        self.addrs = addrs
        self.idx_of = {addr: i for i, addr in enumerate(addrs)}
        self.ends = [blocks[addr].end for addr in addrs]
        self.function_of = [blocks[addr].function for addr in addrs]
        insn_at: dict[int, Instruction] = {}
        insn_block: dict[int, int] = {}
        syscall_addrs: list[int] = []
        for addr in addrs:
            block = blocks[addr]
            has_syscall = False
            for insn in block.insns:
                insn_at[insn.addr] = insn
                insn_block[insn.addr] = addr
                if insn.mnemonic == "syscall":
                    has_syscall = True
            if has_syscall:
                syscall_addrs.append(addr)
        self.insn_at = insn_at
        self.insn_block = insn_block
        self.syscall_addrs = syscall_addrs


class CFG:
    """Basic-block CFG of one image, with typed edges both ways."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.functions: dict[int, FunctionInfo] = {}
        self._succs: dict[int, list[Edge]] = {}
        self._preds: dict[int, list[Edge]] = {}
        #: blocks ending in an unresolved indirect call/jmp
        self.indirect_sites: set[int] = set()
        #: addresses taken discovered in the image (all, not just active)
        self.addresses_taken: set[int] = set()
        #: external (cross-image) edges: block addr -> symbol names called
        self.external_calls: dict[int, list[str]] = {}
        #: dedup key set mirroring the edge lists (O(1) add_edge)
        self._edge_keys: set[tuple[int, int, str, str]] = set()
        #: structural versions; bumped by mutations
        self._version = 0
        self._block_version = 0
        #: lazily built dense index layers + the versions they reflect
        self._index: CFGIndex | None = None
        self._index_version = -1
        self._blocks_view: _BlockIndex | None = None
        self._blocks_view_version = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_block(self, block: BasicBlock) -> None:
        self.blocks[block.addr] = block
        self._succs.setdefault(block.addr, [])
        self._preds.setdefault(block.addr, [])
        self._version += 1
        self._block_version += 1

    def add_edge(self, src: int, dst: int, kind: str, label: str = "") -> bool:
        """Insert an edge; returns False if it already existed."""
        key = (src, dst, kind, label)
        edge_keys = self._edge_keys
        if key in edge_keys:
            return False
        edge_keys.add(key)
        edge = Edge(src, dst, kind, label)
        self._succs.setdefault(src, []).append(edge)
        self._preds.setdefault(dst, []).append(edge)
        self._version += 1
        return True

    # ------------------------------------------------------------------
    # Dense index
    # ------------------------------------------------------------------

    @property
    def index(self) -> CFGIndex:
        """The dense query index for the graph's current shape.

        Built on first use and rebuilt automatically after structural
        mutation; callers may hold the returned object across queries
        but must re-read this property after adding blocks or edges.
        Edge-only mutation rebuilds just the adjacency layer; the
        instruction maps survive until a block is added.
        """
        if self._index is None or self._index_version != self._version:
            if (self._blocks_view is None
                    or self._blocks_view_version != self._block_version):
                self._blocks_view = _BlockIndex(self)
                self._blocks_view_version = self._block_version
            self._index = CFGIndex(self, self._blocks_view)
            self._index_version = self._version
        return self._index

    def add_external_call(self, src: int, symbol: str) -> None:
        self.external_calls.setdefault(src, [])
        if symbol not in self.external_calls[src]:
            self.external_calls[src].append(symbol)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successors(self, addr: int, kinds: tuple[str, ...] | None = None) -> list[Edge]:
        edges = self._succs.get(addr, [])
        if kinds is None:
            return list(edges)
        return [e for e in edges if e.kind in kinds]

    def predecessors(self, addr: int, kinds: tuple[str, ...] | None = None) -> list[Edge]:
        edges = self._preds.get(addr, [])
        if kinds is None:
            return list(edges)
        return [e for e in edges if e.kind in kinds]

    def block_at(self, addr: int) -> BasicBlock | None:
        return self.blocks.get(addr)

    def block_containing(self, addr: int) -> BasicBlock | None:
        """The block whose address range covers ``addr``.

        O(log n): bisect over the index's sorted block starts (the
        original implementation was a linear scan over every block).
        """
        block = self.blocks.get(addr)
        if block is not None:
            return block
        start = self.index.block_containing(addr)
        return self.blocks[start] if start is not None else None

    def function_of_block(self, addr: int) -> FunctionInfo | None:
        block = self.blocks.get(addr)
        if block is None:
            return None
        return self.functions.get(block.function)

    def syscall_blocks(self) -> list[BasicBlock]:
        return [self.blocks[addr] for addr in self.index.syscall_addrs]

    def call_sites_of(self, func_entry: int) -> list[Edge]:
        """Edges calling into the function whose entry is ``func_entry``."""
        return self.predecessors(func_entry, kinds=(EDGE_CALL, EDGE_ICALL))

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self._succs.values())

    def total_block_bytes(self, addrs: set[int] | None = None) -> int:
        """Summed size in bytes of the given blocks (all blocks if None)."""
        if addrs is None:
            return sum(b.size for b in self.blocks.values())
        return sum(self.blocks[a].size for a in addrs if a in self.blocks)

    def summary(self) -> dict:
        """Deterministic JSON-able summary of the recovered graph.

        This is the ``cfg`` artifact payload the analysis pipeline
        persists per binary: enough to inspect and diff a recovery
        (block/edge/function counts, indirect-call surface, addresses
        taken, external-call symbols) without serialising every block.
        """
        return {
            "n_blocks": self.n_blocks,
            "n_edges": self.n_edges,
            "n_functions": len(self.functions),
            "n_syscall_blocks": len(self.index.syscall_addrs),
            "indirect_sites": sorted(self.indirect_sites),
            "addresses_taken": sorted(self.addresses_taken),
            "external_symbols": sorted({
                symbol
                for symbols in self.external_calls.values()
                for symbol in symbols
            }),
        }
