"""CFG recovery: basic blocks, functions, direct edges, indirect resolution."""

from .builder import build_cfg
from .indirect import (
    all_addresses_taken,
    data_segment_addresses_taken,
    resolve_indirect_active,
    resolve_indirect_all,
)
from .model import (
    CFG,
    EDGE_CALL,
    EDGE_CALLRET,
    EDGE_EXT,
    EDGE_FALL,
    EDGE_ICALL,
    EDGE_JUMP,
    BasicBlock,
    Edge,
    FunctionInfo,
)
from .reachability import called_external_symbols, reachable_blocks, reachable_functions

__all__ = [
    "build_cfg",
    "CFG",
    "BasicBlock",
    "Edge",
    "FunctionInfo",
    "EDGE_FALL",
    "EDGE_JUMP",
    "EDGE_CALL",
    "EDGE_CALLRET",
    "EDGE_ICALL",
    "EDGE_EXT",
    "all_addresses_taken",
    "data_segment_addresses_taken",
    "resolve_indirect_all",
    "resolve_indirect_active",
    "reachable_blocks",
    "reachable_functions",
    "called_external_symbols",
]
