"""Reachability over the block CFG.

Used by the active-addresses-taken refinement (§4.3) and by syscall-site
filtering (§4.4): only blocks reachable from the program entry point (or
from a library's externally-invoked functions) take part in identification.

The sweep runs over the :class:`~repro.cfg.model.CFGIndex` dense view: a
byte-per-block bitset of visited ids and precomputed flow adjacency id
lists, instead of re-filtering (and re-allocating) typed edge lists at
every step.  Library interface construction calls this once per export,
so the sweep itself is one of the cold kernel's hottest loops.
"""

from __future__ import annotations

from .model import CFG, FLOW_KINDS

#: re-exported for compatibility: the edge kinds a reachability sweep
#: follows (every intra-image kind; cross-image calls are not edges)
_FLOW_KINDS = FLOW_KINDS


def reachable_blocks(cfg: CFG, roots: list[int]) -> set[int]:
    """Block addresses reachable from ``roots`` following flow edges."""
    index = cfg.index
    seen = index.reachable_seen(roots)
    addrs = index.addrs
    return {addrs[i] for i, hit in enumerate(seen) if hit}


def reachable_functions(cfg: CFG, roots: list[int]) -> set[int]:
    """Function entries whose blocks are reachable from ``roots``."""
    index = cfg.index
    seen = index.reachable_seen(roots)
    function_of = index.function_of
    return {function_of[i] for i, hit in enumerate(seen) if hit}


def called_external_symbols(cfg: CFG, reachable: set[int]) -> set[str]:
    """External (imported) symbols invoked from the given reachable blocks."""
    out: set[str] = set()
    for addr, symbols in cfg.external_calls.items():
        if addr in reachable:
            out.update(symbols)
    return out
