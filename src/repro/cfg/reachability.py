"""Reachability over the block CFG.

Used by the active-addresses-taken refinement (§4.3) and by syscall-site
filtering (§4.4): only blocks reachable from the program entry point (or
from a library's externally-invoked functions) take part in identification.
"""

from __future__ import annotations

from collections import deque

from .model import (
    CFG,
    EDGE_CALL,
    EDGE_CALLRET,
    EDGE_FALL,
    EDGE_ICALL,
    EDGE_JUMP,
)

_FLOW_KINDS = (EDGE_FALL, EDGE_JUMP, EDGE_CALL, EDGE_CALLRET, EDGE_ICALL)


def reachable_blocks(cfg: CFG, roots: list[int]) -> set[int]:
    """Block addresses reachable from ``roots`` following flow edges."""
    seen: set[int] = set()
    queue: deque[int] = deque(a for a in roots if a in cfg.blocks)
    seen.update(queue)
    while queue:
        addr = queue.popleft()
        for edge in cfg.successors(addr, kinds=_FLOW_KINDS):
            if edge.dst not in seen and edge.dst in cfg.blocks:
                seen.add(edge.dst)
                queue.append(edge.dst)
    return seen


def reachable_functions(cfg: CFG, roots: list[int]) -> set[int]:
    """Function entries whose blocks are reachable from ``roots``."""
    blocks = reachable_blocks(cfg, roots)
    return {cfg.blocks[a].function for a in blocks}


def called_external_symbols(cfg: CFG, reachable: set[int]) -> set[str]:
    """External (imported) symbols invoked from the given reachable blocks."""
    out: set[str] = set()
    for addr, symbols in cfg.external_calls.items():
        if addr in reachable:
            out.update(symbols)
    return out
