"""Indirect-branch resolution via (active) addresses taken (§4.3, Figure 4).

An *address taken* is a code-segment address that the program materialises
as data — the target of a function-pointer assignment.  Three syntactic
forms are recognised:

* ``lea reg, [rip + X]`` with X in the text segment (PIC form),
* ``movabs reg, imm64`` with the immediate in the text segment (non-PIC
  form, used by ``ET_EXEC`` static binaries),
* 8-byte words in the data segment pointing into the text segment
  (statically initialised function-pointer tables).

SysFilter resolves every indirect branch to *every* address taken.  B-Side
refines this to **active** addresses taken: only lea/mov sites inside blocks
reachable from the entry point count, iterating to a fixpoint because newly
added indirect edges can make more address-taking blocks reachable.
"""

from __future__ import annotations

import struct

from ..loader.image import LoadedImage
from ..x86.insn import Immediate, Memory
from .model import CFG, EDGE_ICALL


def addresses_taken_in_block(cfg: CFG, image: LoadedImage, block_addr: int) -> set[int]:
    """Addresses taken by instructions of one block."""
    out: set[int] = set()
    block = cfg.blocks[block_addr]
    for insn in block.insns:
        if insn.mnemonic == "lea":
            mem = insn.operands[1]
            if isinstance(mem, Memory) and mem.rip_relative and image.is_code_addr(mem.disp):
                out.add(mem.disp)
        elif insn.mnemonic in ("mov", "movabs"):
            src = insn.operands[1] if len(insn.operands) == 2 else None
            if (
                isinstance(src, Immediate)
                and src.width == 64
                and image.is_code_addr(src.value)
            ):
                out.add(src.value)
    return out


def data_segment_addresses_taken(image: LoadedImage) -> set[int]:
    """Code addresses stored as 8-byte words in the data segment."""
    seg = image.elf.data_segment
    if seg is None:
        return set()
    out: set[int] = set()
    data = seg.data
    for off in range(0, len(data) - 7, 8):
        value = struct.unpack_from("<Q", data, off)[0]
        if image.is_code_addr(value):
            out.add(value)
    return out


def all_addresses_taken(cfg: CFG, image: LoadedImage) -> set[int]:
    """The SysFilter-style overestimation: every address taken anywhere."""
    out = data_segment_addresses_taken(image)
    for addr in cfg.blocks:
        out |= addresses_taken_in_block(cfg, image, addr)
    return out


def _indirect_targets(cfg: CFG, taken: set[int]) -> list[int]:
    """Filter addresses taken down to plausible indirect-branch targets.

    Only block leaders qualify (an address taken that is not a block start
    cannot be decoded as a jump target in our exact-disassembly setting).
    """
    return [a for a in sorted(taken) if a in cfg.blocks]


def resolve_indirect_all(cfg: CFG, image: LoadedImage) -> set[int]:
    """Resolve every indirect site to every address taken (SysFilter mode).

    Returns the set of addresses taken used.
    """
    taken = all_addresses_taken(cfg, image)
    targets = _indirect_targets(cfg, taken)
    for site in cfg.indirect_sites:
        for target in targets:
            cfg.add_edge(site, target, EDGE_ICALL)
    cfg.addresses_taken = taken
    return taken


def resolve_indirect_active(
    cfg: CFG,
    image: LoadedImage,
    roots: list[int],
    max_iterations: int = 64,
) -> tuple[set[int], int]:
    """B-Side's active-addresses-taken fixpoint (Figure 4).

    Starting from the basic CFG, repeatedly: compute blocks reachable from
    ``roots``; collect addresses taken *in reachable blocks* (plus data
    segment words, which are always considered live); resolve indirect sites
    *in reachable blocks* to those targets; repeat until no new edge.

    Returns ``(active_addresses_taken, iterations_used)``.

    Each iteration runs one dense reachability sweep over the current
    :attr:`CFG.index` (rebuilt automatically when the previous round
    added edges).  Per-block addresses-taken sets are computed at most
    once per block across the whole fixpoint — block instructions never
    change, only reachability does — instead of being re-scanned every
    round.
    """
    data_taken = data_segment_addresses_taken(image)
    active: set[int] = set()
    taken_in: dict[int, set[int]] = {}  # block addr -> addresses taken
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        index = cfg.index
        seen = index.reachable_seen(roots)
        addrs = index.addrs
        new_active = set(data_taken)
        for i, hit in enumerate(seen):
            if not hit:
                continue
            addr = addrs[i]
            taken = taken_in.get(addr)
            if taken is None:
                taken = addresses_taken_in_block(cfg, image, addr)
                taken_in[addr] = taken
            new_active |= taken
        targets = _indirect_targets(cfg, new_active)
        changed = new_active != active
        idx_of = index.idx_of
        for site in cfg.indirect_sites:
            i = idx_of.get(site)
            if i is None or not seen[i]:
                continue
            for target in targets:
                if cfg.add_edge(site, target, EDGE_ICALL):
                    changed = True
        active = new_active
        if not changed:
            break
    cfg.addresses_taken = active
    return active, iterations
