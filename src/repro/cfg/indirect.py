"""Indirect-branch resolution via (active) addresses taken (§4.3, Figure 4).

An *address taken* is a code-segment address that the program materialises
as data — the target of a function-pointer assignment.  Three syntactic
forms are recognised:

* ``lea reg, [rip + X]`` with X in the text segment (PIC form),
* ``movabs reg, imm64`` with the immediate in the text segment (non-PIC
  form, used by ``ET_EXEC`` static binaries),
* 8-byte words in the data segment pointing into the text segment
  (statically initialised function-pointer tables).

SysFilter resolves every indirect branch to *every* address taken.  B-Side
refines this to **active** addresses taken: only lea/mov sites inside blocks
reachable from the entry point count, iterating to a fixpoint because newly
added indirect edges can make more address-taking blocks reachable.
"""

from __future__ import annotations

import struct

from ..loader.image import LoadedImage
from ..x86.insn import Immediate, Memory
from .model import CFG, EDGE_ICALL
from .signatures import callee_signature, caller_signature, filter_targets


def addresses_taken_in_block(cfg: CFG, image: LoadedImage, block_addr: int) -> set[int]:
    """Addresses taken by instructions of one block."""
    out: set[int] = set()
    block = cfg.blocks[block_addr]
    for insn in block.insns:
        if insn.mnemonic == "lea":
            mem = insn.operands[1]
            if isinstance(mem, Memory) and mem.rip_relative and image.is_code_addr(mem.disp):
                out.add(mem.disp)
        elif insn.mnemonic in ("mov", "movabs"):
            src = insn.operands[1] if len(insn.operands) == 2 else None
            if (
                isinstance(src, Immediate)
                and src.width == 64
                and image.is_code_addr(src.value)
            ):
                out.add(src.value)
    return out


def data_segment_addresses_taken(image: LoadedImage) -> set[int]:
    """Code addresses stored as 8-byte words in the data segment.

    Pointer tables are naturally aligned, so candidate words are
    enumerated at 8-byte-aligned *virtual addresses* — a segment whose
    vaddr is not 8-aligned starts scanning at the first aligned word
    rather than at byte 0 (which would read straddled garbage).  The
    trailing partial word of a segment whose size is not a multiple of
    8 is never read.
    """
    seg = image.elf.data_segment
    if seg is None:
        return set()
    out: set[int] = set()
    data = seg.data
    end = len(data)
    first = (-seg.vaddr) % 8
    for off in range(first, end, 8):
        if off + 8 > end:
            break
        value = struct.unpack_from("<Q", data, off)[0]
        if image.is_code_addr(value):
            out.add(value)
    return out


def all_addresses_taken(cfg: CFG, image: LoadedImage) -> set[int]:
    """The SysFilter-style overestimation: every address taken anywhere."""
    out = data_segment_addresses_taken(image)
    for addr in cfg.blocks:
        out |= addresses_taken_in_block(cfg, image, addr)
    return out


def _indirect_targets(cfg: CFG, taken: set[int]) -> list[int]:
    """Filter addresses taken down to plausible indirect-branch targets.

    Only block leaders qualify (an address taken that is not a block start
    cannot be decoded as a jump target in our exact-disassembly setting).
    """
    return [a for a in sorted(taken) if a in cfg.blocks]


def resolve_indirect_all(cfg: CFG, image: LoadedImage) -> set[int]:
    """Resolve every indirect site to every address taken (SysFilter mode).

    Returns the set of addresses taken used.
    """
    taken = all_addresses_taken(cfg, image)
    targets = _indirect_targets(cfg, taken)
    for site in cfg.indirect_sites:
        for target in targets:
            cfg.add_edge(site, target, EDGE_ICALL)
    cfg.addresses_taken = taken
    return taken


def resolve_indirect_active(
    cfg: CFG,
    image: LoadedImage,
    roots: list[int],
    max_iterations: int = 64,
    signatures: bool = False,
) -> tuple[set[int], int]:
    """B-Side's active-addresses-taken fixpoint (Figure 4).

    Starting from the basic CFG, repeatedly: compute blocks reachable from
    ``roots``; collect addresses taken *in reachable blocks* (plus data
    segment words, which are always considered live); resolve indirect sites
    *in reachable blocks* to those targets; repeat until no new edge.

    With ``signatures=True`` each site's target list is refined to the
    signature-compatible subset (:mod:`repro.cfg.signatures`): targets
    whose entry region provably reads an argument register no backward
    path to the site prepares are skipped.  Sites (or targets) whose
    signature is unknown keep the full list, and caller signatures are
    re-derived every round because freshly added ``icall`` edges can
    turn a known signature unknown — edges only ever accumulate, so the
    fixpoint still converges.

    Returns ``(active_addresses_taken, iterations_used)``.

    Each iteration runs one dense reachability sweep over the current
    :attr:`CFG.index` (rebuilt automatically when the previous round
    added edges).  Per-block addresses-taken sets are computed at most
    once per block across the whole fixpoint — block instructions never
    change, only reachability does — instead of being re-scanned every
    round.
    """
    data_taken = data_segment_addresses_taken(image)
    active: set[int] = set()
    taken_in: dict[int, set[int]] = {}  # block addr -> addresses taken
    #: target entry -> callee signature (block insns never change)
    callee_sigs: dict[int, frozenset | None] = {}
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        index = cfg.index
        seen = index.reachable_seen(roots)
        addrs = index.addrs
        new_active = set(data_taken)
        for i, hit in enumerate(seen):
            if not hit:
                continue
            addr = addrs[i]
            taken = taken_in.get(addr)
            if taken is None:
                taken = addresses_taken_in_block(cfg, image, addr)
                taken_in[addr] = taken
            new_active |= taken
        targets = _indirect_targets(cfg, new_active)
        if signatures:
            for target in targets:
                if target not in callee_sigs:
                    callee_sigs[target] = callee_signature(cfg, target)
        changed = new_active != active
        idx_of = index.idx_of
        for site in cfg.indirect_sites:
            i = idx_of.get(site)
            if i is None or not seen[i]:
                continue
            site_targets = targets
            if signatures:
                site_targets = filter_targets(
                    caller_signature(cfg, site), targets, callee_sigs,
                )
            for target in site_targets:
                if cfg.add_edge(site, target, EDGE_ICALL):
                    changed = True
        active = new_active
        if not changed:
            break
    cfg.addresses_taken = active
    return active, iterations
