"""Function-granular partition of an image's text section.

The incremental analysis tier (``bside analyze --incremental``) caches
per-function CFG products, so it needs a deterministic way to cut the
text section into function *regions*.  Region starts are the in-text
function-symbol starts (``LoadedImage.function_boundaries``) plus the
text base; each region extends to the next start (or the text end).
This makes the partition a **total, non-overlapping cover** of
``[text_base, text_end)`` by construction — the property
``tests/test_cfg_properties.py`` pins — and keeps it independent of the
decode stream: symbol tables survive K-function rebuilds unchanged, so
region boundaries are stable under code edits that preserve layout.

:func:`FunctionPartition.dependency_cone` is the reference cone
computation the differential harness asserts against: a changed
function invalidates itself plus every transitive *caller* (any region
whose direct flow references can reach a changed region), because
cached products are keyed by a Merkle closure hash over the
callee-direction reference graph (:mod:`repro.cfg.funccfg`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..loader.image import LoadedImage


@dataclass(frozen=True, slots=True)
class FunctionRegion:
    """One half-open function region ``[start, end)`` of the text section."""

    start: int
    end: int
    name: str = ""


class FunctionPartition:
    """Ordered, non-overlapping function regions covering the text section."""

    __slots__ = ("regions", "_starts", "_text_base", "_text_end")

    def __init__(self, regions: list[FunctionRegion], text_base: int, text_end: int):
        self.regions = regions
        self._starts = [r.start for r in regions]
        self._text_base = text_base
        self._text_end = text_end

    @classmethod
    def from_image(cls, image: LoadedImage) -> "FunctionPartition":
        text_base = image.text_base
        text_end = image.text_end
        starts = {text_base}
        for start, __ in image.function_boundaries:
            if text_base <= start < text_end:
                starts.add(start)
        ordered = sorted(starts)
        regions: list[FunctionRegion] = []
        for i, start in enumerate(ordered):
            end = ordered[i + 1] if i + 1 < len(ordered) else text_end
            sym = image.function_at(start)
            regions.append(
                FunctionRegion(start=start, end=end, name=sym.name if sym else "")
            )
        return cls(regions, text_base, text_end)

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def region_containing(self, addr: int) -> FunctionRegion | None:
        """The region owning ``addr``, or ``None`` outside the text section."""
        if not (self._text_base <= addr < self._text_end):
            return None
        return self.regions[bisect_right(self._starts, addr) - 1]

    @staticmethod
    def dependency_cone(
        refs: dict[int, set[int]], changed: set[int]
    ) -> set[int]:
        """Changed regions plus every transitive caller.

        ``refs`` maps a region start to the region starts its direct
        flow (calls/jumps/fall-throughs) references.  The cone is the
        reverse-reachable set: closure hashes fold callee digests, so a
        change propagates *up* the reference graph.
        """
        callers: dict[int, set[int]] = {}
        for src, dsts in refs.items():
            for dst in dsts:
                callers.setdefault(dst, set()).add(src)
        cone = set(changed)
        stack = list(changed)
        while stack:
            for src in callers.get(stack.pop(), ()):
                if src not in cone:
                    cone.add(src)
                    stack.append(src)
        return cone

    @staticmethod
    def identification_cone(
        refs: dict[int, set[int]], changed: set[int]
    ) -> set[int]:
        """Regions whose cached ``funcid`` products a change invalidates.

        Identification symex runs *forward* through callees and its
        anchor queries walk *backward* into callers, so the funcid key
        folds both the callee closure and the caller cone — a change
        therefore invalidates the union of both transitive directions:
        ``callers*(changed) ∪ callees*(changed) ∪ changed``.
        """
        cone = FunctionPartition.dependency_cone(refs, changed)
        stack = list(changed)
        while stack:
            for dst in refs.get(stack.pop(), ()):
                if dst not in cone:
                    cone.add(dst)
                    stack.append(dst)
        return cone
