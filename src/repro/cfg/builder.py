"""CFG construction from a loaded image (paper step D, Figure 3).

The builder performs an exact linear-sweep disassembly (our writer never
interleaves code and data — matching the paper's §2.2 observation about
GCC/LLVM output), splits the instruction stream into basic blocks at
leaders, assigns blocks to functions, and installs the *direct* edges.
Indirect branches are recorded as unresolved sites for
:mod:`repro.cfg.indirect` to handle; GOT-mediated imports are resolved to
external symbol edges immediately.

The stages are exposed as standalone helpers (:func:`compute_leaders`,
:func:`carve_blocks`, :func:`assign_functions`, :func:`add_direct_edges`)
because the function-granular incremental assembler
(:class:`repro.core.pipeline.IncrementalCfgRecoveryPass`) re-runs the
carve/assign/edge stages over a leader set stitched from cached
per-function products — sharing the exact code paths is what makes an
incremental CFG byte-identical to a cold one.
"""

from __future__ import annotations

from bisect import bisect_right

from ..errors import CfgError
from ..loader.image import LoadedImage
from ..x86.decoder import decode_all
from ..x86.insn import (
    _CONDITIONAL_MNEMONICS,
    _HALT_MNEMONICS,
    _TERMINATOR_MNEMONICS,
    Immediate,
    Instruction,
    Memory,
)
from .model import (
    CFG,
    EDGE_CALL,
    EDGE_CALLRET,
    EDGE_FALL,
    EDGE_JUMP,
    BasicBlock,
    FunctionInfo,
)


def _got_import_symbol(image: LoadedImage, insn: Instruction) -> str | None:
    """If ``insn`` is an indirect branch through an imported GOT slot,
    return the imported symbol's name."""
    if not insn.is_indirect_branch:
        return None
    op = insn.operands[0]
    if isinstance(op, Memory) and op.rip_relative:
        return image.got_imports.get(op.disp)
    if isinstance(op, Memory) and op.base is None and op.index is None:
        return image.got_imports.get(op.disp)
    return None


def compute_leaders(
    image: LoadedImage,
    insns: list[Instruction],
    by_addr: dict[int, Instruction],
) -> set[int]:
    """Block-leader addresses of the whole instruction stream.

    (mnemonic-set test inlined: the terminator property per instruction
    was measurable over whole-image sweeps)
    """
    terminators = _TERMINATOR_MNEMONICS
    leaders: set[int] = {image.text_base}
    for start, __ in image.function_boundaries:
        leaders.add(start)
    if image.entry:
        leaders.add(image.entry)
    add_leader = leaders.add
    for insn in insns:
        if insn.mnemonic in terminators:
            nxt = insn.addr + insn.size
            if nxt in by_addr:
                add_leader(nxt)
            # Of the terminators only direct call/jmp/jcc carry an
            # Immediate operand, so this is branch_target() inlined.
            ops = insn.operands
            if len(ops) == 1 and type(ops[0]) is Immediate:
                target = ops[0].value
                if target in by_addr:
                    add_leader(target)
    return leaders


def carve_blocks(
    cfg: CFG, insns: list[Instruction], leaders: set[int]
) -> None:
    """Split the instruction stream into basic blocks at ``leaders``.

    Only leader addresses that are actual instruction addresses split;
    a terminator always ends the current block.  Passing the set of
    *block start* addresses instead of leaders is equivalent: block
    starts are exactly the leaders plus post-terminator positions, and
    the latter start a block regardless.
    """
    terminators = _TERMINATOR_MNEMONICS
    current: BasicBlock | None = None
    current_insns: list[Instruction] | None = None
    for insn in insns:
        if current is None or insn.addr in leaders:
            current = BasicBlock(addr=insn.addr)
            current_insns = current.insns
            cfg.add_block(current)
        current_insns.append(insn)
        if insn.mnemonic in terminators:
            current = None


def assign_functions(cfg: CFG, image: LoadedImage) -> None:
    """Create the function table and assign every block to its owner."""
    boundaries = image.function_boundaries
    if not boundaries:
        # No symbols: treat the whole text as one function rooted at entry.
        boundaries = [(image.text_base, image.text_end)]
    for start, end in boundaries:
        sym = image.function_at(start)
        cfg.functions[start] = FunctionInfo(
            entry=start, end=end, name=sym.name if sym else "",
        )

    sorted_starts = sorted(cfg.functions)
    functions = cfg.functions
    for block in cfg.blocks.values():
        # Blocks before the first symbol belong to the first function region.
        owner = sorted_starts[max(bisect_right(sorted_starts, block.addr) - 1, 0)]
        block.function = owner
        functions[owner].block_addrs.append(block.addr)


def add_direct_edges(cfg: CFG, image: LoadedImage) -> None:
    """Install direct edges; record GOT imports and indirect sites.

    (classification inlined on the terminator mnemonic: one whole-image
    pass, previously dominated by per-block property chains)
    """
    blocks = cfg.blocks
    add_edge = cfg.add_edge
    for block in blocks.values():
        term = block.insns[-1]
        mnemonic = term.mnemonic
        nxt = term.addr + term.size

        if mnemonic in _CONDITIONAL_MNEMONICS:
            ops = term.operands
            target = ops[0].value if len(ops) == 1 and type(ops[0]) is Immediate \
                else None
            if target in blocks:
                add_edge(block.addr, target, EDGE_JUMP)
            if nxt in blocks:
                add_edge(block.addr, nxt, EDGE_FALL)
            continue

        if mnemonic == "jmp":
            target = term.branch_target()
            if target is not None:
                if target in blocks:
                    # Direct jmp — including tail calls to other functions —
                    # is a plain jump edge: flow continues at the target.
                    add_edge(block.addr, target, EDGE_JUMP)
                continue
            symbol = _got_import_symbol(image, term)
            if symbol is not None:
                cfg.add_external_call(block.addr, symbol)
            else:
                cfg.indirect_sites.add(block.addr)
            continue

        if mnemonic == "call":
            target = term.branch_target()
            if target is not None:
                if target in blocks:
                    add_edge(block.addr, target, EDGE_CALL)
            else:
                symbol = _got_import_symbol(image, term)
                if symbol is not None:
                    cfg.add_external_call(block.addr, symbol)
                else:
                    cfg.indirect_sites.add(block.addr)
            if nxt in blocks:
                add_edge(block.addr, nxt, EDGE_CALLRET)
            continue

        if mnemonic == "syscall":
            if nxt in blocks:
                add_edge(block.addr, nxt, EDGE_FALL)
            continue

        if mnemonic == "ret" or mnemonic in _HALT_MNEMONICS:
            continue

        # Non-terminator last instruction (end of text or pre-leader split).
        if nxt in blocks:
            add_edge(block.addr, nxt, EDGE_FALL)

    return None


def build_cfg(image: LoadedImage) -> CFG:
    """Disassemble ``image`` and build its direct-edge CFG."""
    insns = decode_all(image.text_bytes, image.text_base)
    if not insns:
        raise CfgError(f"{image.name}: empty text segment")
    by_addr = {i.addr: i for i in insns}

    leaders = compute_leaders(image, insns, by_addr)

    cfg = CFG()
    carve_blocks(cfg, insns, leaders)
    assign_functions(cfg, image)
    add_direct_edges(cfg, image)
    return cfg
