"""CFG construction from a loaded image (paper step D, Figure 3).

The builder performs an exact linear-sweep disassembly (our writer never
interleaves code and data — matching the paper's §2.2 observation about
GCC/LLVM output), splits the instruction stream into basic blocks at
leaders, assigns blocks to functions, and installs the *direct* edges.
Indirect branches are recorded as unresolved sites for
:mod:`repro.cfg.indirect` to handle; GOT-mediated imports are resolved to
external symbol edges immediately.
"""

from __future__ import annotations

from ..errors import CfgError
from ..loader.image import LoadedImage
from ..x86.decoder import decode_all
from ..x86.insn import Immediate, Instruction, Memory
from .model import (
    CFG,
    EDGE_CALL,
    EDGE_CALLRET,
    EDGE_FALL,
    EDGE_JUMP,
    BasicBlock,
    FunctionInfo,
)


def _got_import_symbol(image: LoadedImage, insn: Instruction) -> str | None:
    """If ``insn`` is an indirect branch through an imported GOT slot,
    return the imported symbol's name."""
    if not insn.is_indirect_branch:
        return None
    op = insn.operands[0]
    if isinstance(op, Memory) and op.rip_relative:
        return image.got_imports.get(op.disp)
    if isinstance(op, Memory) and op.base is None and op.index is None:
        return image.got_imports.get(op.disp)
    return None


def build_cfg(image: LoadedImage) -> CFG:
    """Disassemble ``image`` and build its direct-edge CFG."""
    insns = decode_all(image.text_bytes, image.text_base)
    if not insns:
        raise CfgError(f"{image.name}: empty text segment")
    by_addr = {i.addr: i for i in insns}

    # ---- find leaders ---------------------------------------------------
    leaders: set[int] = {image.text_base}
    for start, __ in image.function_boundaries:
        leaders.add(start)
    if image.entry:
        leaders.add(image.entry)
    for insn in insns:
        if insn.terminates_block:
            nxt = insn.end
            if nxt in by_addr:
                leaders.add(nxt)
            target = insn.branch_target()
            if target is not None and target in by_addr:
                leaders.add(target)

    # ---- carve blocks -----------------------------------------------------
    cfg = CFG()
    current: BasicBlock | None = None
    for insn in insns:
        if insn.addr in leaders or current is None:
            current = BasicBlock(addr=insn.addr)
            cfg.add_block(current)
        current.insns.append(insn)
        if insn.terminates_block:
            current = None

    # ---- functions ----------------------------------------------------------
    boundaries = image.function_boundaries
    if not boundaries:
        # No symbols: treat the whole text as one function rooted at entry.
        boundaries = [(image.text_base, image.text_end)]
    for start, end in boundaries:
        sym = image.function_at(start)
        cfg.functions[start] = FunctionInfo(
            entry=start, end=end, name=sym.name if sym else "",
        )

    sorted_starts = sorted(cfg.functions)

    def owner(addr: int) -> int:
        # Blocks before the first symbol belong to the first function region.
        lo, hi = 0, len(sorted_starts) - 1
        best = sorted_starts[0]
        while lo <= hi:
            mid = (lo + hi) // 2
            if sorted_starts[mid] <= addr:
                best = sorted_starts[mid]
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    for block in cfg.blocks.values():
        block.function = owner(block.addr)
        cfg.functions[block.function].block_addrs.append(block.addr)

    # ---- direct edges -----------------------------------------------------
    for block in cfg.blocks.values():
        term = block.terminator
        nxt = term.end

        if term.is_conditional:
            target = term.branch_target()
            if target in cfg.blocks:
                cfg.add_edge(block.addr, target, EDGE_JUMP)
            if nxt in cfg.blocks:
                cfg.add_edge(block.addr, nxt, EDGE_FALL)
            continue

        if term.mnemonic == "jmp":
            target = term.branch_target()
            if target is not None:
                if target in cfg.blocks:
                    # Direct jmp — including tail calls to other functions —
                    # is a plain jump edge: flow continues at the target.
                    cfg.add_edge(block.addr, target, EDGE_JUMP)
                continue
            symbol = _got_import_symbol(image, term)
            if symbol is not None:
                cfg.add_external_call(block.addr, symbol)
            else:
                cfg.indirect_sites.add(block.addr)
            continue

        if term.is_call:
            target = term.branch_target()
            if target is not None:
                if target in cfg.blocks:
                    cfg.add_edge(block.addr, target, EDGE_CALL)
            else:
                symbol = _got_import_symbol(image, term)
                if symbol is not None:
                    cfg.add_external_call(block.addr, symbol)
                else:
                    cfg.indirect_sites.add(block.addr)
            if nxt in cfg.blocks:
                cfg.add_edge(block.addr, nxt, EDGE_CALLRET)
            continue

        if term.is_syscall:
            if nxt in cfg.blocks:
                cfg.add_edge(block.addr, nxt, EDGE_FALL)
            continue

        if term.is_ret or term.is_halt:
            continue

        # Non-terminator last instruction (end of text or pre-leader split).
        if nxt in cfg.blocks:
            cfg.add_edge(block.addr, nxt, EDGE_FALL)

    return cfg
