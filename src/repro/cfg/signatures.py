"""Signature-compatible indirect-call refinement (ROADMAP item 2).

The §4.3 active-addresses-taken fixpoint resolves every reachable
indirect call to *every* active address taken — sound, but the dominant
precision loss: dead function-pointer targets (error handlers reachable
only through never-executed dispatch tables) drag their syscall
footprints into the identified set.  Following iResolveX's layered
refinement (and TypeArmor's arity matching before it), this module adds
a cheap **signature compatibility** layer on top of the sound base
analysis:

* a **callee signature** per candidate target — the set of SysV argument
  registers the function *reads before writing* in its straight-line
  entry region (an **under-approximation** of its parameters: the
  bounded forward scan stops at the first control transfer, at the
  instruction bound, and at anything it cannot classify, each of which
  can only shrink the set);
* a **caller signature** per indirect-call site — the set of argument
  registers *written* on backward paths from the call (an
  **over-approximation** of the arguments prepared: a bounded backward
  walk over fall/jump predecessor edges that stops at ``callret``
  in-edges, because the SysV ABI makes the argument registers
  caller-saved, so a value live across an earlier call must be written
  again after it).

A target is **compatible** with a site iff ``callee ⊆ caller``.  Safety
is structural: whenever either side cannot be bounded — an instruction
the scan cannot classify, a backward walk that escapes into callers
(``call``/``icall`` in-edges or a predecessor-less entry block) or
exceeds its block budget — the signature is *unknown* and the site
keeps the **full** candidate set.  The filter can therefore only remove
targets whose parameter reads no path to the site provably prepares;
the eval accuracy gate additionally pins recall == 1.0 on every
validation app under the filter.

The approximation directions matter and are asymmetric on purpose:
under-approximating the callee and over-approximating the caller both
bias ``callee ⊆ caller`` toward *keeping* a target, so every modelling
shortcut below (``push`` reads ignored, ``cmov`` never killing its
destination, unioning prepared sets across joined paths) errs toward
the unfiltered behaviour.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from ..x86.insn import (
    _TERMINATOR_MNEMONICS,
    ALU_MNEMONICS,
    COMPARE_MNEMONICS,
    DATA_MNEMONICS,
    Instruction,
    Memory,
    Register,
)
from ..x86.registers import ARG_REGISTERS
from .model import (
    CFG,
    EDGE_CALL,
    EDGE_CALLRET,
    EDGE_FALL,
    EDGE_ICALL,
    EDGE_JUMP,
)

#: canonical 64-bit names of the SysV integer argument registers
ARG_REG_NAMES = frozenset(r.name for r in ARG_REGISTERS)

#: forward entry-region scan bound (instructions)
DEFAULT_MAX_INSNS = 64
#: backward preparation walk bound (blocks)
DEFAULT_MAX_BLOCKS = 16

#: a signature: argument-register names, or ``None`` = unknown
Signature = frozenset | None

_MOV_KILL = frozenset({"mov", "movabs", "movzx", "movsx", "movsxd"})
_ALU_UNARY = frozenset({"inc", "dec", "neg", "not"})
_CMOV = frozenset(m for m in DATA_MNEMONICS if m.startswith("cmov"))


def _memory_reads(mem: Memory, reads: set[str]) -> None:
    if mem.base is not None:
        reads.add(mem.base.name)
    if mem.index is not None:
        reads.add(mem.index.name)


def _insn_effects(insn: Instruction) -> tuple[set[str], set[str]] | None:
    """``(reads, kills)`` of one straight-line instruction over canonical
    64-bit register names, or ``None`` when the effect cannot be
    classified (unknown shape -> the caller must give up the signature).

    ``kills`` lists registers whose pre-instruction value is destroyed
    (every modelled write is >= 32 bits wide, hence zero-extending).
    ``push`` is deliberately read-free: pushing an argument register is
    the register-save idiom, and dropping a read only under-approximates
    the callee side (safe).  ``cmov`` reads its destination and is never
    a kill (the move is conditional).
    """
    mnemonic = insn.mnemonic
    ops = insn.operands
    reads: set[str] = set()
    kills: set[str] = set()

    if mnemonic == "nop":
        return reads, kills
    if mnemonic in ("cdq", "cqo"):
        reads.add("rax")
        kills.add("rdx")
        return reads, kills
    if mnemonic == "push":
        if len(ops) == 1:
            if type(ops[0]) is Memory:
                _memory_reads(ops[0], reads)
            return reads, kills
        return None
    if mnemonic == "pop":
        if len(ops) == 1:
            if type(ops[0]) is Register:
                kills.add(ops[0].name)
                return reads, kills
            if type(ops[0]) is Memory:
                _memory_reads(ops[0], reads)
                return reads, kills
        return None

    if len(ops) != 2 and not (mnemonic in _ALU_UNARY and len(ops) == 1):
        return None
    dst = ops[0]
    src = ops[1] if len(ops) == 2 else None

    if type(src) is Register:
        reads.add(src.name)
    elif type(src) is Memory:
        _memory_reads(src, reads)

    if mnemonic in _MOV_KILL:
        if type(dst) is Register:
            kills.add(dst.name)
        elif type(dst) is Memory:
            _memory_reads(dst, reads)
        else:
            return None
        return reads, kills
    if mnemonic == "lea":
        if type(dst) is Register and type(src) is Memory:
            kills.add(dst.name)
            return reads, kills
        return None
    if mnemonic in _CMOV:
        if type(dst) is Register:
            reads.add(dst.name)  # conditional: old value may survive
            return reads, kills
        return None
    if mnemonic in COMPARE_MNEMONICS:
        if type(dst) is Register:
            reads.add(dst.name)
        elif type(dst) is Memory:
            _memory_reads(dst, reads)
        return reads, kills
    if mnemonic in ALU_MNEMONICS:
        if type(dst) is Register:
            zeroing = (
                mnemonic in ("xor", "sub")
                and type(src) is Register
                and src.name == dst.name
            )
            if zeroing:
                reads.discard(dst.name)  # xor r,r / sub r,r: pure kill
            else:
                reads.add(dst.name)
            kills.add(dst.name)
            return reads, kills
        if type(dst) is Memory:
            _memory_reads(dst, reads)
            return reads, kills
        return None
    return None


def entry_signature(
    fetch: Callable[[int], Instruction | None] | Mapping[int, Instruction],
    entry: int,
    max_insns: int = DEFAULT_MAX_INSNS,
) -> Signature:
    """Callee signature from a raw instruction stream.

    Scans the straight-line region from ``entry`` (following sequential
    decode order across block-leader splits), collecting argument
    registers read before being killed.  Stops — with the safe partial
    set — at the first control transfer, at ``max_insns``, or when the
    stream ends; returns ``None`` (unknown) when ``entry`` is not an
    instruction or an effect cannot be classified.

    Shared by :func:`callee_signature` (over the CFG's instruction
    index) and the incremental tier's ``funccfg``/``funcid`` product
    validation (over the whole-image decode map), so the two derivations
    cannot diverge.
    """
    get = fetch.get if isinstance(fetch, Mapping) else fetch
    insn = get(entry)
    if insn is None:
        return None
    params: set[str] = set()
    written: set[str] = set()
    addr = entry
    for __ in range(max_insns):
        insn = get(addr)
        if insn is None or insn.mnemonic in _TERMINATOR_MNEMONICS:
            break
        effects = _insn_effects(insn)
        if effects is None:
            return None
        reads, kills = effects
        for name in reads:
            if name in ARG_REG_NAMES and name not in written:
                params.add(name)
        written |= kills
        addr = insn.end
    return frozenset(params)


def callee_signature(
    cfg: CFG, entry: int, max_insns: int = DEFAULT_MAX_INSNS
) -> Signature:
    """Argument registers a candidate target reads before writing."""
    if entry not in cfg.blocks:
        return None
    return entry_signature(cfg.index.insn_at, entry, max_insns)


def caller_signature(
    cfg: CFG, site_block: int, max_blocks: int = DEFAULT_MAX_BLOCKS
) -> Signature:
    """Argument registers written on backward paths to an indirect call.

    Walks fall/jump predecessor edges from the site block, folding every
    argument-register kill into the prepared set.  A ``callret`` in-edge
    ends that path with its collected set (caller-saved argument
    registers do not survive the intervening call).  Returns ``None``
    (unknown) when a path escapes the function — ``call``/``icall``
    in-edges, or a block with no predecessors at all — when the block
    budget is exceeded, or when an instruction cannot be classified.
    """
    block = cfg.blocks.get(site_block)
    if block is None:
        return None
    prepared: set[str] = set()
    visited = {site_block}
    stack = [site_block]
    scanned = 0
    while stack:
        scanned += 1
        if scanned > max_blocks:
            return None
        addr = stack.pop()
        block = cfg.blocks[addr]
        insns = block.insns
        for i in range(len(insns) - 1, -1, -1):
            insn = insns[i]
            if insn.mnemonic in _TERMINATOR_MNEMONICS:
                # Only a block's last instruction can be a terminator.
                # At the site block this is the indirect call itself; a
                # fall/jump predecessor's jmp/jcc writes nothing, and a
                # syscall clobbers rcx (over-approx: count it prepared).
                if insn.mnemonic == "syscall":
                    prepared.add("rcx")
                continue
            effects = _insn_effects(insn)
            if effects is None:
                return None
            __, kills = effects
            prepared |= kills & ARG_REG_NAMES
        preds = cfg._preds.get(addr, ())
        if not preds:
            # Walked back to a root/entry block without crossing a call:
            # arguments may flow in from outside the visible region.
            return None
        for edge in preds:
            kind = edge.kind
            if kind == EDGE_FALL or kind == EDGE_JUMP:
                if edge.src not in visited:
                    visited.add(edge.src)
                    stack.append(edge.src)
            elif kind == EDGE_CALL or kind == EDGE_ICALL:
                # Entered via a call: the site's arguments may be the
                # caller's own, which this walk cannot see.
                return None
            # EDGE_CALLRET: the path stops here with its collected set.
    return frozenset(prepared)


def compatible(caller: Signature, callee: Signature) -> bool:
    """Keep a target unless both signatures are known and incompatible."""
    if caller is None or callee is None:
        return True
    return callee <= caller


def filter_targets(
    caller: Signature,
    targets: list[int],
    callee_signatures: Mapping[int, Signature],
) -> list[int]:
    """The site's compatible subset of ``targets`` (order-preserving).

    Monotone in ``targets`` (per-element predicate) and the identity
    whenever the caller signature is unknown or a target's signature is
    missing/unknown.
    """
    if caller is None:
        return list(targets)
    return [
        t for t in targets if compatible(caller, callee_signatures.get(t))
    ]


def signature_doc(sig: Signature) -> list[str] | None:
    """JSON-able form: sorted register names, or ``None`` for unknown."""
    return None if sig is None else sorted(sig)


def signature_from_doc(doc) -> Signature:
    """Inverse of :func:`signature_doc`; raises on malformed payloads."""
    if doc is None:
        return None
    if not isinstance(doc, list):
        raise ValueError(f"malformed signature doc {doc!r}")
    out = []
    for name in doc:
        if not isinstance(name, str):
            raise ValueError(f"malformed signature doc {doc!r}")
        out.append(name)
    return frozenset(out)
