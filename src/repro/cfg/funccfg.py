"""Per-function CFG products: the ``funccfg`` artifact kind's payloads.

The incremental assembler (:class:`repro.core.pipeline.IncrementalCfgRecoveryPass`)
splits CFG recovery into cacheable per-function units.  This module owns
the three pure pieces of that machinery:

* :func:`scan_image` — one pass over the (always fresh) whole-image
  decode stream, collecting per-region facts: the leaders a region's
  own instructions contribute inside and outside itself, the
  callee-direction reference graph between regions, and decode
  alignment (whether the region's first decoded instruction sits
  exactly at its start — only *aligned* regions are cacheable, which
  decouples a cached product from its neighbours' carve state).
* closure hashing — each region gets a body hash over its byte slice,
  then a **Merkle closure hash** folding the body hashes of every
  region reachable through the reference graph (Tarjan condensation,
  callee-first).  A ``funccfg`` entry is keyed by this closure hash, so
  editing one function invalidates exactly the changed region plus its
  transitive callers: the dependency cone
  (:func:`repro.cfg.partition.FunctionPartition.dependency_cone`).
* :func:`build_product` / :func:`validate_product` — the cached payload
  (block starts + a local reachability summary) and its miss-not-crash
  validation: any shape mismatch, stale field, or changed cross-region
  leader set degrades that one region to a cold re-carve.

Edges are deliberately **not** cached: they are re-derived from the
stitched block set by the shared :func:`repro.cfg.builder.add_direct_edges`,
which is what keeps incremental CFGs byte-identical to cold ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..loader.image import LoadedImage
from ..x86.insn import _TERMINATOR_MNEMONICS, Immediate, Instruction
from .model import CFG, FLOW_KINDS
from .partition import FunctionPartition
from .signatures import entry_signature, signature_doc


@dataclass(slots=True)
class RegionScan:
    """Live per-region facts derived from the whole-image decode stream."""

    start: int
    end: int
    #: address of the first decoded instruction inside the region
    #: (-1 when the region decodes to no instruction); the region is
    #: *aligned* — and therefore cacheable — iff this equals ``start``
    first_insn: int = -1
    n_insns: int = 0
    #: in-region leaders contributed by this region's own instructions
    own_leaders: set[int] = field(default_factory=set)
    #: leaders this region's instructions impose on *other* regions
    out_leaders: set[int] = field(default_factory=set)
    #: region starts this region's direct flow references (dep edges)
    refs: set[int] = field(default_factory=set)

    @property
    def aligned(self) -> bool:
        return self.first_insn == self.start


@dataclass(slots=True)
class ImageScan:
    """Everything the incremental pass needs besides the artifact store."""

    partition: FunctionPartition
    #: region start -> its :class:`RegionScan`
    regions: dict[int, RegionScan]
    #: region start -> leaders imposed on it from outside its own bytes
    #: (cross-region branch targets, the image entry point)
    extra_leaders: dict[int, set[int]]
    #: callee-direction reference graph between region starts
    refs: dict[int, set[int]]
    body_hashes: dict[int, str]
    closure_hashes: dict[int, str]
    #: Merkle digest over the *reversed* reference graph: folds the body
    #: hashes of every transitive caller (the backward slice wrapper
    #: identification can walk into)
    caller_hashes: dict[int, str]
    #: combined key for ``funcid`` products: callee closure + caller cone
    funcid_hashes: dict[int, str]
    #: region start -> callee argument signature of the region's entry
    #: (:func:`repro.cfg.signatures.entry_signature` over the decode
    #: stream; part of the ``funccfg``/``funcid`` payloads so a cached
    #: product self-describes the signature the refinement derived)
    entry_sigs: dict[int, frozenset | None]


def scan_image(
    image: LoadedImage,
    insns: list[Instruction],
    by_addr: dict[int, Instruction],
) -> ImageScan:
    """Scan the decode stream once, producing all per-region facts."""
    partition = FunctionPartition.from_image(image)
    regions = partition.regions
    nregions = len(regions)
    scans = {
        r.start: RegionScan(start=r.start, end=r.end) for r in regions
    }

    terminators = _TERMINATOR_MNEMONICS
    ri = 0
    for insn in insns:
        while ri + 1 < nregions and insn.addr >= regions[ri].end:
            ri += 1
        region = regions[ri]
        rs = scans[region.start]
        if rs.first_insn < 0:
            rs.first_insn = insn.addr
        rs.n_insns += 1
        if insn.mnemonic not in terminators:
            continue
        # Same contribution rule as builder.compute_leaders, attributed
        # to the region whose instruction produced it.
        nxt = insn.addr + insn.size
        if nxt in by_addr:
            _contribute(rs, region.start, region.end, nxt, partition)
        ops = insn.operands
        if len(ops) == 1 and type(ops[0]) is Immediate:
            target = ops[0].value
            if target in by_addr:
                _contribute(rs, region.start, region.end, target, partition)

    extra_leaders: dict[int, set[int]] = {r.start: set() for r in regions}
    refs: dict[int, set[int]] = {}
    for rs in scans.values():
        refs[rs.start] = rs.refs
        for addr in rs.out_leaders:
            other = partition.region_containing(addr)
            if other is not None:
                extra_leaders[other.start].add(addr)
    # The entry point is a leader the ELF header imposes from outside
    # any region's byte content.
    entry = image.entry
    if entry and entry in by_addr:
        owner = partition.region_containing(entry)
        if owner is not None and entry != owner.start:
            extra_leaders[owner.start].add(entry)

    starts = [r.start for r in regions]
    body_hashes = _body_hashes(image, regions)
    closure_hashes = _closure_hashes(starts, refs, body_hashes)
    # Identification products additionally depend on the *backward*
    # slice: wrapper-parameter symex walks from a call site into its
    # callers, so the funcid key folds a caller-cone digest computed by
    # the same Merkle machinery over the reversed reference graph.
    reversed_refs: dict[int, set[int]] = {s: set() for s in starts}
    for src, dsts in refs.items():
        for dst in dsts:
            if dst in reversed_refs:
                reversed_refs[dst].add(src)
    caller_hashes = _closure_hashes(starts, reversed_refs, body_hashes)
    funcid_hashes = {
        s: hashlib.sha256(
            f"{closure_hashes[s]}+{caller_hashes[s]}".encode()
        ).hexdigest()
        for s in starts
    }
    entry_sigs = {s: entry_signature(by_addr, s) for s in starts}
    return ImageScan(
        partition=partition,
        regions=scans,
        extra_leaders=extra_leaders,
        refs=refs,
        body_hashes=body_hashes,
        closure_hashes=closure_hashes,
        caller_hashes=caller_hashes,
        funcid_hashes=funcid_hashes,
        entry_sigs=entry_sigs,
    )


def _contribute(
    rs: RegionScan,
    start: int,
    end: int,
    addr: int,
    partition: FunctionPartition,
) -> None:
    if start <= addr < end:
        rs.own_leaders.add(addr)
        return
    rs.out_leaders.add(addr)
    other = partition.region_containing(addr)
    if other is not None:
        rs.refs.add(other.start)


def _body_hashes(image: LoadedImage, regions) -> dict[int, str]:
    text = image.text_bytes
    base = image.text_base
    out: dict[int, str] = {}
    for r in regions:
        h = hashlib.sha256(f"{r.start:x}|{r.end:x}|".encode())
        h.update(text[r.start - base:r.end - base])
        out[r.start] = h.hexdigest()
    return out


def _closure_hashes(
    starts: list[int],
    refs: dict[int, set[int]],
    body: dict[int, str],
) -> dict[int, str]:
    """Merkle closure digest per region over the callee-direction graph.

    Tarjan's algorithm pops strongly-connected components callees-first,
    so each component's digest can fold its successors' digests as soon
    as it is popped.  Regions in the same SCC share a component digest;
    each region's closure hash additionally folds its own body hash so
    SCC members stay distinct keys.
    """
    starts_set = set(starts)
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    comp_of: dict[int, int] = {}
    comps: list[list[int]] = []
    counter = 0

    for root in starts:
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work: list[tuple[int, object]] = [
            (root, iter(sorted(refs.get(root, ()))))
        ]
        while work:
            node, it = work[-1]
            succ = next(it, None)
            if succ is not None:
                if succ not in starts_set:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(refs.get(succ, ())))))
                elif succ in on_stack and index[succ] < low[node]:
                    low[node] = index[succ]
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                comp: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp_of[w] = len(comps)
                    comp.append(w)
                    if w == node:
                        break
                comps.append(comp)

    comp_digest: list[str] = []
    for ci, comp in enumerate(comps):
        succ_comps = {
            comp_of[succ]
            for member in comp
            for succ in refs.get(member, ())
            if succ in comp_of and comp_of[succ] != ci
        }
        h = hashlib.sha256()
        h.update("|".join(sorted(body[m] for m in comp)).encode())
        h.update(b"#")
        h.update("|".join(sorted(comp_digest[s] for s in succ_comps)).encode())
        comp_digest.append(h.hexdigest())

    return {
        start: hashlib.sha256(
            f"{body[start]}:{comp_digest[comp_of[start]]}".encode()
        ).hexdigest()
        for start in starts
    }


def product_name(image_name: str, start: int) -> str:
    """Store name of one region's ``funccfg`` entry."""
    return f"{image_name}@{start:x}"


def build_product(
    cfg: CFG,
    rs: RegionScan,
    extra_leaders: set[int],
    entry_sig: frozenset | None = None,
) -> dict:
    """The cacheable per-region payload, derived from the stitched CFG."""
    block_starts = sorted(
        addr for addr in cfg.blocks if rs.start <= addr < rs.end
    )
    return {
        "start": rs.start,
        "end": rs.end,
        "first_insn": rs.first_insn,
        "n_insns": rs.n_insns,
        "extra_leaders": sorted(extra_leaders),
        "block_starts": block_starts,
        "local_reachable": _local_reachable(cfg, rs.start, rs.end),
        "arg_signature": signature_doc(entry_sig),
    }


def validate_product(
    payload: dict,
    rs: RegionScan,
    extra_leaders: set[int],
    by_addr: dict[int, Instruction],
    entry_sig: frozenset | None = None,
) -> list[int] | None:
    """Return the cached block starts, or ``None`` (= cache miss).

    Misses, never crashes: corrupt shapes, stale geometry, a changed
    cross-region leader set, or a stale cached argument signature all
    degrade to a cold re-carve of this one region.
    """
    try:
        if payload["start"] != rs.start or payload["end"] != rs.end:
            return None
        if payload["first_insn"] != rs.first_insn:
            return None
        if payload["n_insns"] != rs.n_insns:
            return None
        if list(payload["extra_leaders"]) != sorted(extra_leaders):
            return None
        if payload["arg_signature"] != signature_doc(entry_sig):
            return None
        block_starts = [int(a) for a in payload["block_starts"]]
    except (KeyError, TypeError, ValueError):
        return None
    for addr in block_starts:
        if not (rs.start <= addr < rs.end) or addr not in by_addr:
            return None
    return block_starts


def _local_reachable(cfg: CFG, start: int, end: int) -> list[int]:
    """Blocks reachable from the region entry via intra-region flow.

    This is the per-function reachability summary the tentpole caches;
    whole-program reachability still runs globally downstream, so the
    summary is advisory (profiling, future directed search) rather than
    load-bearing for report content.
    """
    if start not in cfg.blocks:
        return []
    seen = {start}
    stack = [start]
    while stack:
        for edge in cfg.successors(stack.pop(), kinds=FLOW_KINDS):
            dst = edge.dst
            if start <= dst < end and dst not in seen and dst in cfg.blocks:
                seen.add(dst)
                stack.append(dst)
    return sorted(seen)
