#!/usr/bin/env python3
"""Scenario: argument-aware rules and a deployable Docker profile.

Beyond allow-listing syscall *numbers*, the identification machinery can
recover statically-determined *argument* values: this script builds a
small network binary, shows that ``socket``'s domain argument resolves to
exactly ``AF_INET``, derives a rule that would block an ``AF_PACKET``
sniffing attempt, and finally exports a Docker-compatible seccomp JSON
profile for the binary.

Run:  python examples/argument_aware_policy.py
"""

from repro.cfg import build_cfg, resolve_indirect_active
from repro.core import (
    AnalysisBudget,
    BSideAnalyzer,
    build_argument_rules,
    find_sites,
    identify_site_arguments,
)
from repro.corpus import ProgramBuilder
from repro.filters.docker import profile_from_report, render_profile
from repro.symex import ExecContext, MemoryBackend
from repro.syscalls import name_of, number_of
from repro.x86 import EAX, RDI, RDX, RSI

AF_INET, AF_INET6, AF_PACKET = 2, 10, 17
SOCK_STREAM = 1


def build_server():
    p = ProgramBuilder("tiny-server")
    with p.function("_start"):
        p.asm.mov(EAX, number_of("socket"))
        p.asm.mov(RDI, AF_INET)
        p.asm.mov(RSI, SOCK_STREAM)
        p.asm.mov(RDX, 0)
        p.asm.syscall()
        p.asm.mov(EAX, number_of("bind"))
        p.asm.syscall()
        p.asm.mov(EAX, number_of("listen"))
        p.asm.syscall()
        p.asm.mov(EAX, number_of("exit_group"))
        p.asm.mov(RDI, 0)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


def main() -> None:
    prog = build_server()

    # Number identification (the paper's pipeline).
    analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
    report = analyzer.analyze(prog.image)
    print(f"identified syscalls: {sorted(name_of(n) for n in report.syscalls)}")

    # Argument identification (the extension).
    cfg = build_cfg(prog.image)
    resolve_indirect_active(cfg, prog.image, [prog.image.entry])
    ctx = ExecContext.for_image(cfg, prog.image)
    backend = MemoryBackend([prog.image])
    sites = find_sites(cfg)
    socket_site = sites[0]
    args = identify_site_arguments(cfg, ctx, socket_site, n_args=3, backend=backend)
    for a in args:
        state = sorted(a.values) if a.is_constrained else "unconstrained"
        print(f"  socket arg{a.arg_index} (%{a.register}): {state}")

    rules = build_argument_rules(
        {socket_site: {number_of('socket')}}, {socket_site: args},
    )
    rule = rules[0]
    print(f"\nderived rule: socket(domain in {sorted(rule.arg_values[0])}, ...)")
    print(f"  socket(AF_INET, SOCK_STREAM):  "
          f"{'allowed' if rule.permits(number_of('socket'), (AF_INET, 1, 0)) else 'BLOCKED'}")
    print(f"  socket(AF_PACKET, SOCK_RAW):   "
          f"{'allowed' if rule.permits(number_of('socket'), (AF_PACKET, 3, 0)) else 'BLOCKED'}")

    # Deployable artifact.
    print("\nDocker seccomp profile:")
    print(render_profile(profile_from_report(report)))


if __name__ == "__main__":
    main()
