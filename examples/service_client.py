#!/usr/bin/env python3
"""Analysis-as-a-service, end to end: daemon, client, derived artifacts.

Walks the full ``bside serve`` conversation:

1. start an analysis daemon (in-process, on an ephemeral port — pass
   ``--url`` to drive an already-running ``bside serve`` instead),
2. submit a binary by path, poll to completion, fetch its report,
3. resubmit the identical binary and watch it come back from the
   content-addressed cache with zero analysis,
4. submit raw ELF bytes inline (the daemon never sees the client's disk),
5. derive enforcement artifacts — a seccomp-style filter and an
   OCI/Docker seccomp profile — from the completed job,
6. submit a whole directory as one fleet job and read the inventory.

Run:  python examples/service_client.py [--url http://host:port]
"""

import argparse
import os
import sys
import tempfile

from repro.corpus import ProgramBuilder
from repro.service import ServiceClient
from repro.syscalls import number_of
from repro.x86 import EAX, RDI


def build_demo(name: str, syscalls: list[str]):
    """A tiny static binary invoking the given syscalls then exiting."""
    p = ProgramBuilder(name)
    with p.function("_start"):
        for sc in syscalls:
            p.asm.mov(EAX, number_of(sc))
            p.asm.syscall()
        p.asm.mov(EAX, number_of("exit_group"))
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", help="an already-running daemon "
                        "(default: start one in-process)")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="bside-service-demo-")
    bindir = os.path.join(workdir, "bin")
    os.makedirs(bindir)
    demo = build_demo("svc-demo", ["getpid", "write"])
    demo_path = os.path.join(bindir, "svc-demo")
    demo.save(demo_path)
    build_demo("svc-demo-2", ["read", "close"]).save(
        os.path.join(bindir, "svc-demo-2"))

    server = None
    if args.url:
        url = args.url
    else:
        from repro.service import AnalysisService, ServiceServer

        service = AnalysisService(
            os.path.join(workdir, "state"), workers=2, queue_size=16,
        )
        server = ServiceServer(service, port=0)
        server.start()
        url = server.url
        print(f"started in-process daemon at {url}")

    client = ServiceClient(url)
    print(f"health: {client.health()['status']}")

    # --- 1. submit by path, poll, fetch -------------------------------
    job = client.submit_path(demo_path)
    print(f"\nsubmitted {demo_path} as {job['id']} (status {job['status']})")
    job = client.wait(job["id"])
    report = client.report(job["id"])
    print(f"cold run: {len(report['syscalls'])} syscalls "
          f"in {job['metrics']['seconds']:.3f}s "
          f"(from_cache={job['metrics']['from_cache']})")

    # --- 2. warm resubmission: served from the artifact store ---------
    warm = client.wait(client.submit_path(demo_path)["id"])
    assert warm["metrics"]["from_cache"], "warm job must be cache-served"
    print(f"warm run: from_cache={warm['metrics']['from_cache']} "
          f"in {warm['metrics']['seconds']:.3f}s — zero analysis")

    # --- 3. inline submission (bytes travel in the request) -----------
    inline = client.wait(
        client.submit_bytes("svc-demo-inline", demo.elf_bytes)["id"])
    print(f"inline upload: from_cache={inline['metrics']['from_cache']} "
          f"(same content hash, so the cache still hits)")

    # --- 4. derived enforcement artifacts -----------------------------
    filt = client.filter(job["id"])
    profile = client.profile(job["id"])
    print(f"\nderived filter allows {len(filt['allowed'])} syscalls "
          f"({', '.join(filt['allowed_names'])}), "
          f"blocks {filt['n_blocked']}")
    print(f"derived docker profile: defaultAction={profile['defaultAction']}, "
          f"{len(profile['syscalls'][0]['names'])} allowed names")

    # --- 5. a whole directory as one fleet job ------------------------
    fleet_job = client.wait(client.submit_directory(bindir)["id"])
    inventory = client.report(fleet_job["id"])["report"]
    print(f"\nfleet job over {bindir}: {inventory['fleet_size']} binaries, "
          f"{inventory['success_rate']:.0%} analyzed")

    stats = client.stats()
    print(f"\ndaemon stats: {stats['queue']['submitted']} submitted, "
          f"report cache {stats['cache']['kinds']['report']['hits']} hits / "
          f"{stats['cache']['kinds']['report']['misses']} misses, "
          f"{stats['pipeline_runs']} pipeline runs this process")

    if server is not None:
        server.stop()
        print("daemon stopped.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
