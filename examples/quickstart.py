#!/usr/bin/env python3
"""Quickstart: build a tiny binary, analyze it, derive and enforce a filter.

Walks the full B-Side loop end to end:

1. assemble a small static x86-64 ELF executable with the corpus
   builder — it invokes getpid directly, then write and close through a
   syscall(2)-style wrapper that receives the number in %rdi,
2. run B-Side on it (no sources, no execution): CFG recovery finds the
   four syscall sites, wrapper detection localises the wrapper's number
   parameter, and symbolic identification resolves every number,
3. derive a seccomp-style allow-list filter from the report,
4. run the binary under the bundled emulator with the filter installed
   and show that legitimate behaviour survives while an injected
   "exploit" variant that suddenly wants execve is killed on its first
   forbidden syscall.

Run:  python examples/quickstart.py

This walkthrough is embedded verbatim in docs/user-guide.md; `make
docs-check` fails if the two drift apart.
"""

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import ProgramBuilder
from repro.emu import run_traced
from repro.filters import FilterProgram
from repro.syscalls import name_of, number_of
from repro.x86 import EAX, RAX, RDI


def build_target():
    """A toy network-ish daemon: reads, writes, exits — with a wrapper."""
    p = ProgramBuilder("quickstart-demo")

    # A syscall wrapper, like libc's syscall(2): number arrives in %rdi.
    with p.function("do_syscall"):
        p.asm.mov(RAX, RDI)
        p.asm.syscall()
        p.asm.ret()

    with p.function("_start"):
        p.asm.mov(EAX, number_of("getpid"))   # direct invocation
        p.asm.syscall()
        p.asm.mov(RDI, number_of("write"))    # via the wrapper
        p.asm.call("do_syscall")
        p.asm.mov(RDI, number_of("close"))    # via the wrapper again
        p.asm.call("do_syscall")
        p.asm.mov(EAX, number_of("exit_group"))
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


def main() -> None:
    prog = build_target()
    print(f"built {prog.name}: {len(prog.elf_bytes)} bytes of ELF")

    # --- static analysis --------------------------------------------------
    analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
    report = analyzer.analyze(prog.image)
    assert report.success
    names = sorted(name_of(nr) for nr in report.syscalls)
    print(f"\nB-Side identified {len(report.syscalls)} syscalls: {', '.join(names)}")
    print(f"  sites examined: {report.sites_examined}, "
          f"blocks explored symbolically: {report.bbs_explored}")

    # --- filter derivation ---------------------------------------------------
    filt = FilterProgram.from_report(report)
    print(f"\nderived allow-list filter blocks "
          f"{filt.n_blocked} of the syscall table:")
    print("\n".join("  " + line for line in filt.render().splitlines()[:8]))
    print("  ...")

    # --- enforcement ------------------------------------------------------------
    ok = run_traced(prog.image, filter_allowed=filt.allowed)
    print(f"\nunder the filter, the real workload ran fine "
          f"(exit status {ok.exit_status}, trace: "
          f"{sorted(name_of(n) for n in ok.syscall_numbers)})")

    # An "exploited" variant that suddenly wants execve.
    bad = ProgramBuilder("quickstart-exploited")
    with bad.function("_start"):
        bad.asm.mov(EAX, number_of("execve"))
        bad.asm.syscall()
        bad.asm.hlt()
    bad.set_entry("_start")
    exploited = bad.build()
    killed = run_traced(exploited.image, filter_allowed=filt.allowed)
    assert killed.killed_by_filter is not None
    print(f"\nthe exploited variant was killed on "
          f"{name_of(killed.killed_by_filter)} — the filter held.")


if __name__ == "__main__":
    main()
