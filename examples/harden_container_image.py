#!/usr/bin/env python3
"""Scenario: a cloud provider hardens tenant binaries it has no sources for.

This is the paper's motivating deployment (§1): a provider receives opaque
dynamically-linked binaries plus their shared libraries, and wants a
per-application seccomp policy instead of Docker's 44-syscall generic
denylist.  The script:

1. takes three tenant "applications" (nginx-, redis- and sqlite-like
   profiles from the corpus, stand-ins for the customer images),
2. analyzes each against the shipped libraries — library interfaces are
   computed once and shared across tenants,
3. derives one allow-list per application and compares their strictness
   with a generic cloud-wide policy,
4. verifies against each app's test suite that no legitimate run would be
   killed (the validation of §5.1).

Run:  python examples/harden_container_image.py
"""

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import build_app
from repro.emu import trace_test_suite
from repro.filters import FilterProgram
from repro.syscalls import ALL_SYSCALLS, name_of

TENANTS = ("nginx", "redis", "sqlite")


def main() -> None:
    analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
    filters: dict[str, FilterProgram] = {}

    for tenant in TENANTS:
        bundle = build_app(tenant)
        analyzer.resolver = bundle.resolver  # tenant image's library dir
        report = analyzer.analyze(
            bundle.program.image, modules=bundle.module_images,
        )
        assert report.success, report.failure_reason
        filters[tenant] = FilterProgram.from_report(report)
        print(f"{tenant:<8} identified {len(report.syscalls):>3} syscalls "
              f"-> filter blocks {filters[tenant].n_blocked:>3} "
              f"(libraries analyzed so far: {len(analyzer.interfaces)})")

    # A generic policy must allow the union of everything any tenant needs.
    union = frozenset().union(*(f.allowed for f in filters.values()))
    generic = FilterProgram.allow_list(union)
    print(f"\na one-size-fits-all policy would allow {len(generic.allowed)} "
          f"syscalls; per-app policies allow "
          f"{', '.join(f'{t}={len(f.allowed)}' for t, f in filters.items())}")

    # Dangerous-call check: which tenants get execve blocked?
    from repro.syscalls import number_of

    for tenant, filt in filters.items():
        verdict = "BLOCKED" if filt.blocks(number_of("execve")) else "allowed"
        print(f"  execve is {verdict} for {tenant}")

    # Validation: replay each tenant's test suite under its filter.
    print()
    for tenant in TENANTS:
        bundle = build_app(tenant)
        __, runs = trace_test_suite(
            bundle.program.image, bundle.suite, bundle.resolver,
            filter_allowed=filters[tenant].allowed,
            extra_images=bundle.module_images,
        )
        killed = [r for r in runs if r.killed_by_filter is not None]
        assert not killed, f"{tenant}: filter killed a legitimate run!"
        print(f"{tenant:<8} test suite: {len(runs)} runs, 0 filter kills "
              f"— policy is safe to deploy")


if __name__ == "__main__":
    main()
