#!/usr/bin/env python3
"""Scenario: choosing an identification tool for a mixed binary fleet.

Runs the evaluation subsystem (`repro.eval` — the same engine behind
`bside eval` and the CI accuracy gate) over the six validation apps and
a slice of the Debian-like corpus, and prints the paper's Table 1/2
layout: who even *completes*, how tight the resulting policies are, and
what each tool's failure mode looks like.

Run:  python examples/compare_tools.py
"""

from repro.eval import EvalConfig, run_eval


def main() -> None:
    report = run_eval(EvalConfig(scale=0.1, seed=42))
    print(report.to_text())
    print()
    print("reading: B-Side completes broadly with the tightest policies")
    print("and zero false negatives; Chestnut survives dynamic binaries")
    print("but its fallback allows ~275; SysFilter only handles PIC")
    print("binaries with unwind info, and misses wrapper-made syscalls")
    print("silently on those it does handle.")


if __name__ == "__main__":
    main()
