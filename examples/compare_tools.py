#!/usr/bin/env python3
"""Scenario: choosing an identification tool for a mixed binary fleet.

Runs B-Side, Chestnut and SysFilter side by side over a slice of the
Debian-like corpus and prints, per binary class, who even *completes*, how
tight the resulting policies are, and what each tool's failure mode looks
like — a miniature of the paper's Table 2 narrative.

Run:  python examples/compare_tools.py
"""

import statistics
from collections import Counter

from repro.baselines import ChestnutAnalyzer, SysFilterAnalyzer
from repro.core import BSideAnalyzer
from repro.corpus import make_debian_corpus


def main() -> None:
    corpus = make_debian_corpus(scale=0.2, seed=42)
    resolver = corpus.make_resolver()
    tools = {
        "b-side": BSideAnalyzer(resolver=resolver),
        "chestnut": ChestnutAnalyzer(resolver),
        "sysfilter": SysFilterAnalyzer(resolver),
    }
    print(f"fleet: {len(corpus.binaries)} binaries "
          f"({len(corpus.static_binaries)} static, "
          f"{len(corpus.dynamic_binaries)} dynamic), "
          f"{len(corpus.libraries)} shared libraries\n")

    for tool_name, analyzer in tools.items():
        reports = [(b, analyzer.analyze(b.image)) for b in corpus.binaries]
        ok = [r for __, r in reports if r.success]
        sizes = [len(r.syscalls) for r in ok]
        reasons = Counter(
            r.failure_stage for __, r in reports if not r.success
        )
        print(f"=== {tool_name} ===")
        print(f"  completed {len(ok)}/{len(reports)}")
        if sizes:
            print(f"  identified syscalls: median {statistics.median(sizes):.0f}, "
                  f"min {min(sizes)}, max {max(sizes)}")
        if reasons:
            top = ", ".join(f"{stage or 'load'}: {n}" for stage, n in reasons.most_common())
            print(f"  failure modes: {top}")
        print()

    print("reading: B-Side completes broadly with the tightest policies;")
    print("Chestnut survives dynamic binaries but its fallback allows ~270;")
    print("SysFilter only handles PIC binaries with unwind info, and misses")
    print("wrapper-made syscalls silently on those it does handle.")


if __name__ == "__main__":
    main()
