#!/usr/bin/env python3
"""Scenario: temporal system call specialization for a server (§4.7/§5.4).

A server's life has phases — setup (bind sockets, read config), serving
(the event loop) and shutdown — and each needs a different slice of the
kernel.  This script:

1. analyzes the nginx-like profile and extracts its phase automaton,
2. prints the automaton summary (the Table 4 view),
3. builds a per-phase policy and compares its average strictness to the
   whole-program filter,
4. enforces the phase policy inside the emulated kernel and replays the
   server's test suite: phase transitions happen live on the syscall
   stream and no legitimate run is killed.

Run:  python examples/phase_based_filtering.py
"""

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import build_app
from repro.emu import EmulatedKernel, Machine
from repro.filters import FilterProgram, PhasePolicy


def main() -> None:
    bundle = build_app("nginx")
    analyzer = BSideAnalyzer(
        resolver=bundle.resolver, budget=AnalysisBudget.generous(),
    )
    report, automaton = analyzer.analyze_phases(
        bundle.program.image, modules=bundle.module_images,
        back_propagate=False,
    )
    assert report.success and automaton is not None

    total = len(automaton.all_syscalls())
    sizes = sorted(
        (len(p.allowed) for p in automaton.phases.values()), reverse=True,
    )
    print(f"phases detected: {automaton.n_phases} "
          f"(program invokes {total} syscall types)")
    print(f"largest phases allow {sizes[:5]} syscalls; "
          f"{sum(1 for s in sizes if s <= 1)} strict phases allow at most one")

    # dlopen-loaded module code cannot be placed in phases: its syscalls
    # must be allowed throughout (the sound treatment).
    module_syscalls: set[int] = set()
    for module in bundle.module_images:
        module_syscalls |= analyzer.analyze_library(module).all_syscalls()

    policy = PhasePolicy.from_automaton(
        automaton, use_propagated=False, extra_allowed=module_syscalls,
    )
    whole = FilterProgram.allow_list(report.syscalls)
    gain = policy.strictness_gain_over(whole)
    print(f"\nwhole-program filter allows {len(whole.allowed)} syscalls")
    print(f"phase policy allows {policy.average_allowed():.1f} on average "
          f"-> {gain:.1%} stricter")

    # Live enforcement: the kernel hook tracks phases on the fly.
    print("\nreplaying the test suite under phase enforcement:")
    for inputs in bundle.suite:
        kernel = EmulatedKernel()
        hook = policy.make_kernel_hook()
        kernel.filter_hook = hook
        machine = Machine(kernel)
        machine.load(bundle.program.image, bundle.resolver,
                     extra_images=bundle.module_images)
        machine.set_inputs(inputs)
        status = machine.run()
        tracker = hook.tracker
        print(f"  inputs={inputs}: exit {status}, "
              f"{len(kernel.trace)} syscalls, "
              f"finished in phase {tracker.current}, "
              f"violations: {len(tracker.violations)}")
        assert status == 0 and not tracker.violations


if __name__ == "__main__":
    main()
