#!/usr/bin/env python3
"""Cold-kernel perf gate (`make bench-gate`, enforced in CI).

Runs the cold-kernel workload (:mod:`repro.perf.coldbench`) and gates
it against the committed ``BENCH_cold_kernel.json`` trajectory:

* fail on a >15% cold-path regression vs the latest trajectory entry;
* fail if the speedup vs the recorded pre-optimization baseline drops
  below 3x.

Comparisons use *normalized* cold time (cold seconds divided by an
in-run pure-Python calibration loop), so the committed baseline gates
runs on any machine.

Usage::

    python tools/perf_gate.py                  # gate only
    python tools/perf_gate.py --record LABEL   # gate, then append entry
    python tools/perf_gate.py --record LABEL --role pre-opt-baseline
                                               # seed a new baseline

Exit status: 0 gates pass, 1 a gate failed, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.perf import (  # noqa: E402
    gate_measurement,
    load_trajectory,
    measure_cold_kernel,
    save_trajectory,
)
from repro.perf.coldbench import format_measurement  # noqa: E402
from repro.perf.trajectory import ROLE_OPTIMIZED, ROLE_PRE  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=os.path.join(REPO, "BENCH_cold_kernel.json"),
        help="trajectory file to gate against (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repeats per timing (default 3)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.15,
        help="allowed fractional cold-path regression (default 0.15)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required speedup vs the pre-optimization baseline (default 3)",
    )
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append this measurement to the trajectory under LABEL",
    )
    parser.add_argument(
        "--role", choices=[ROLE_PRE, ROLE_OPTIMIZED], default=ROLE_OPTIMIZED,
        help="role for --record entries (default: optimized)",
    )
    args = parser.parse_args(argv)

    try:
        trajectory = load_trajectory(args.baseline, workload="cold-kernel-v1")
    except ValueError as error:
        print(f"perf-gate: {error}", file=sys.stderr)
        return 2
    print(f"perf-gate: measuring cold kernel (best of {args.repeats})...")
    record = measure_cold_kernel(repeats=args.repeats)
    print(format_measurement(record))
    print()

    recording_baseline = args.record and args.role == ROLE_PRE
    if recording_baseline:
        # Seeding a fresh baseline: nothing to gate against yet.
        result = None
    else:
        result = gate_measurement(
            record, trajectory,
            max_regression=args.max_regression,
            min_speedup=args.min_speedup,
        )
        if result.regression_ratio is not None:
            print(f"perf-gate: vs latest entry "
                  f"'{trajectory.baseline.get('label', '?')}': "
                  f"{result.regression_ratio:.3f}x normalized cold "
                  f"(max allowed {1 + args.max_regression:.2f}x)")
        if result.speedup_vs_pre is not None:
            print(f"perf-gate: speedup vs pre-optimization baseline: "
                  f"{result.speedup_vs_pre:.2f}x "
                  f"(required >= {args.min_speedup:.1f}x)")

    if args.record:
        trajectory.append(record, label=args.record, role=args.role)
        save_trajectory(trajectory, args.baseline)
        print(f"perf-gate: recorded entry '{args.record}' "
              f"({args.role}) in {args.baseline}")

    if result is None:
        print("perf-gate: baseline seeded (no gates applied)")
        return 0
    if not result.ok:
        for problem in result.problems:
            print(f"perf-gate: FAIL: {problem}", file=sys.stderr)
        return 1
    print("perf-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
