#!/usr/bin/env python3
"""Incremental-rebuild gate (`make incremental-gate`, enforced in CI).

Runs the incremental workload (:mod:`repro.perf.incbench`) — a
~400-function binary mutated in 3 functions, re-analyzed through the
function-granular ``funccfg`` cache — and gates it against the
committed ``BENCH_incremental.json`` trajectory:

* fail if the mutation re-analyzes more than 5% of the function
  partition (rebuild locality: cost must track the change, not the
  binary);
* fail if the mutation re-executes the backward symex of more than 5%
  of the identification anchors — the rest must replay from cached
  ``funcid`` products (symex locality);
* fail if the incremental report is not byte-identical (modulo runtime
  fields) to the cold report of the same mutated binary.

Timings are recorded for the trajectory but not gated: locality and
equivalence are the contract, wall time is machine commentary.

Usage::

    python tools/incremental_gate.py                  # gate only
    python tools/incremental_gate.py --record LABEL   # gate, then append

Exit status: 0 gates pass, 1 a gate failed, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.perf import (  # noqa: E402
    INCREMENTAL_WORKLOAD,
    format_incremental_measurement,
    gate_incremental_measurement,
    load_trajectory,
    measure_incremental,
    save_trajectory,
)
from repro.perf.trajectory import ROLE_INCREMENTAL  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=os.path.join(REPO, "BENCH_incremental.json"),
        help="trajectory file to gate against (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repeats per timing (default 3)",
    )
    parser.add_argument(
        "--max-fraction", type=float, default=0.05,
        help="allowed fraction of functions re-analyzed (default 0.05)",
    )
    parser.add_argument(
        "--max-site-fraction", type=float, default=0.05,
        help="allowed fraction of identification sites whose backward "
             "symex re-executes (default 0.05)",
    )
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append this measurement to the trajectory under LABEL",
    )
    args = parser.parse_args(argv)

    try:
        trajectory = load_trajectory(
            args.baseline, workload=INCREMENTAL_WORKLOAD
        )
    except ValueError as error:
        print(f"incremental-gate: {error}", file=sys.stderr)
        return 2
    print(f"incremental-gate: measuring incremental rebuild "
          f"(best of {args.repeats})...")
    record = measure_incremental(repeats=args.repeats)
    print(format_incremental_measurement(record))
    print()

    recording_first = args.record and trajectory.baseline is None
    result = gate_incremental_measurement(
        record, trajectory, max_fraction=args.max_fraction,
        max_site_fraction=args.max_site_fraction,
    )

    if args.record:
        trajectory.append(record, label=args.record, role=ROLE_INCREMENTAL)
        save_trajectory(trajectory, args.baseline)
        print(f"incremental-gate: recorded entry '{args.record}' "
              f"({ROLE_INCREMENTAL}) in {args.baseline}")

    if recording_first:
        # Seeding the trajectory: the locality/equivalence gates still
        # apply (they need no baseline), only the presence check waives.
        problems = [p for p in result.problems
                    if not p.startswith("no baseline entry")]
        if problems:
            for problem in problems:
                print(f"incremental-gate: FAIL: {problem}", file=sys.stderr)
            return 1
        print("incremental-gate: baseline seeded, gates PASS")
        return 0
    if not result.ok:
        for problem in result.problems:
            print(f"incremental-gate: FAIL: {problem}", file=sys.stderr)
        return 1
    print("incremental-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
