#!/usr/bin/env python3
"""Docs invariants, enforced in CI (`make docs-check`).

Five checks, all offline:

1. **Relative links resolve.**  Every `[text](target)` in the repo's
   markdown files whose target is not an absolute URL must point at an
   existing file (anchors are checked against the target's headings).
2. **CLI reference drift.**  Every `bside` subcommand in the argparse
   tree has a `### \`bside <name>\`` entry in `docs/cli.md`, and every
   long flag of every subcommand appears in that file.  A new
   subcommand or flag without documentation fails CI.
3. **Quickstart sync.**  The module docstring of
   `examples/quickstart.py` appears byte-for-byte in
   `docs/user-guide.md`, so the walkthrough and the example cannot
   drift apart.
4. **Results sync.**  The README's "Results" table matches, byte for
   byte, the table rendered from the latest committed
   `BENCH_eval_accuracy.json` trajectory entry
   (`repro.eval.render_results_markdown`) — so the README can never
   show numbers the accuracy gate is not actually enforcing.
5. **Docs index.**  Every page under `docs/` is linked from both
   README.md and ROADMAP.md, so the two indexes list the full docs set
   consistently.

Exit status: 0 clean, 1 with findings (one line each on stderr).
"""

from __future__ import annotations

import ast
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

#: markdown files under these roots are link-checked
DOC_FILES = ["README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"]
DOC_DIRS = ["docs"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _markdown_files() -> list[str]:
    files = [f for f in DOC_FILES if os.path.exists(os.path.join(REPO, f))]
    for root in DOC_DIRS:
        for name in sorted(os.listdir(os.path.join(REPO, root))):
            if name.endswith(".md"):
                files.append(os.path.join(root, name))
    return files


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor: punctuation dropped, each space a dash."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text)
    return text.replace(" ", "-")


def check_links(problems: list[str]) -> None:
    for relpath in _markdown_files():
        base = os.path.dirname(os.path.join(REPO, relpath))
        with open(os.path.join(REPO, relpath)) as f:
            text = f.read()
        for target in _LINK.findall(text):
            if re.match(r"^[a-z]+://|^mailto:", target):
                continue  # external URL: not checked offline
            path, __, anchor = target.partition("#")
            dest = os.path.join(base, path) if path else os.path.join(REPO, relpath)
            if path and not os.path.exists(dest):
                problems.append(f"{relpath}: broken link -> {target}")
                continue
            if anchor and dest.endswith(".md"):
                with open(dest) as f:
                    anchors = {_anchor_of(h) for h in _HEADING.findall(f.read())}
                if anchor not in anchors:
                    problems.append(
                        f"{relpath}: broken anchor -> {target} "
                        f"(no heading '#{anchor}' in {os.path.relpath(dest, REPO)})"
                    )


def check_cli_reference(problems: list[str]) -> None:
    from repro.cli import build_parser

    with open(os.path.join(REPO, "docs", "cli.md")) as f:
        doc = f.read()
    parser = build_parser()
    subactions = [
        action for action in parser._subparsers._group_actions  # noqa: SLF001
    ]
    for action in subactions:
        for name, sub in action.choices.items():
            if f"`bside {name}`" not in doc:
                problems.append(
                    f"docs/cli.md: subcommand 'bside {name}' has no entry"
                )
                continue
            for sub_action in sub._actions:  # noqa: SLF001
                for opt in sub_action.option_strings:
                    if opt == "--help":
                        continue
                    if opt.startswith("--") and opt not in doc:
                        problems.append(
                            f"docs/cli.md: flag '{opt}' of 'bside {name}' "
                            f"is undocumented"
                        )
                # nested subcommands (corpus generate, cache stats, ...)
                if hasattr(sub_action, "choices") and sub_action.choices:
                    for nested, nested_parser in sub_action.choices.items():
                        if not isinstance(nested, str):
                            continue
                        if f"{name} {nested}" not in doc:
                            problems.append(
                                f"docs/cli.md: nested command "
                                f"'bside {name} {nested}' is undocumented"
                            )
                        for na in nested_parser._actions:  # noqa: SLF001
                            for opt in na.option_strings:
                                if opt == "--help":
                                    continue
                                if opt.startswith("--") and opt not in doc:
                                    problems.append(
                                        f"docs/cli.md: flag '{opt}' of "
                                        f"'bside {name} {nested}' is "
                                        f"undocumented"
                                    )


def check_quickstart_sync(problems: list[str]) -> None:
    source = os.path.join(REPO, "examples", "quickstart.py")
    with open(source) as f:
        tree = ast.parse(f.read())
    docstring = ast.get_docstring(tree, clean=False)
    if not docstring:
        problems.append("examples/quickstart.py: no module docstring")
        return
    with open(os.path.join(REPO, "docs", "user-guide.md")) as f:
        guide = f.read()
    if docstring.strip() not in guide:
        problems.append(
            "docs/user-guide.md: quickstart walkthrough is out of sync with "
            "the examples/quickstart.py docstring (must match byte-for-byte)"
        )


def check_results_sync(problems: list[str]) -> None:
    """README "Results" table == render(latest gate-workload entry)."""
    from repro.eval import render_results_markdown
    from repro.eval.gate import GATE_SCALE, GATE_SEED, latest_comparable
    from repro.perf import ACCURACY_WORKLOAD, load_trajectory

    path = os.path.join(REPO, "BENCH_eval_accuracy.json")
    if not os.path.exists(path):
        problems.append(
            "BENCH_eval_accuracy.json: missing — record an entry "
            "(tools/accuracy_gate.py --record <label> --seed-baseline)"
        )
        return
    try:
        trajectory = load_trajectory(path, workload=ACCURACY_WORKLOAD)
    except ValueError as error:
        problems.append(f"BENCH_eval_accuracy.json: {error}")
        return
    # The README documents the CI gate's workload; render the same
    # entry the gate compares against, not just whatever ran last.
    entry = latest_comparable(trajectory, GATE_SCALE, GATE_SEED)
    if entry is None:
        problems.append(
            f"BENCH_eval_accuracy.json: no entry at the gate workload "
            f"(scale {GATE_SCALE}, seed {GATE_SEED}) to render"
        )
        return
    table = render_results_markdown(entry)
    with open(os.path.join(REPO, "README.md")) as f:
        readme = f.read()
    if table not in readme:
        problems.append(
            "README.md: Results table is out of sync with the latest "
            "gate-workload BENCH_eval_accuracy.json entry (paste the "
            "aggregate table from `bside eval --scale 0.2 --seed 42 "
            "--markdown --no-record`, or re-record the trajectory via "
            "`tools/accuracy_gate.py --record <label>`)"
        )


def check_docs_index(problems: list[str]) -> None:
    """Every docs/ page is linked from both README.md and ROADMAP.md."""
    pages = sorted(
        name for name in os.listdir(os.path.join(REPO, "docs"))
        if name.endswith(".md")
    )
    for index in ("README.md", "ROADMAP.md"):
        with open(os.path.join(REPO, index)) as f:
            text = f.read()
        for page in pages:
            if f"docs/{page}" not in text:
                problems.append(
                    f"{index}: docs index is missing docs/{page}"
                )


def main() -> int:
    problems: list[str] = []
    check_links(problems)
    check_cli_reference(problems)
    check_quickstart_sync(problems)
    check_results_sync(problems)
    check_docs_index(problems)
    if problems:
        for problem in problems:
            print(f"docs-check: {problem}", file=sys.stderr)
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs-check: links, CLI reference, quickstart sync, results "
          "table, and docs index all clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
