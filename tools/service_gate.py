#!/usr/bin/env python3
"""Service-scale perf gate (`make service-gate`, enforced in CI).

Runs the service-scale workload (:mod:`repro.perf.servicebench`) — the
asyncio front end plus lease-claiming worker processes driven over real
sockets at 1/2/4 workers — and gates it against the committed
``BENCH_service_scale.json`` trajectory:

* fail on a >15% normalized warm-p99 latency regression vs the latest
  trajectory entry;
* fail on a >15% normalized warm throughput drop vs the latest entry;
* fail if the max worker tier's steady-state (warm) throughput falls
  below 3x the 1-worker cold throughput (the PR-6 acceptance ratio,
  re-proven on every run).

Comparisons use *normalized* numbers (multiplied/divided by an in-run
pure-Python calibration loop), so the committed baseline gates runs on
any machine.  CI runs the default profile: a deterministic small-scale
load (8 distinct binaries, client ramp 4/8/16, 4 jobs per client) —
``benchmarks/bench_service_scale.py`` is the full-size load generator.

Usage::

    python tools/service_gate.py                  # gate only
    python tools/service_gate.py --record LABEL   # gate, then append
    python tools/service_gate.py --record pr6-seed --seed-baseline
                                                  # seed a new baseline

Exit status: 0 gates pass, 1 a gate failed, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.perf import (  # noqa: E402
    ROLE_SERVICE,
    SERVICE_WORKLOAD,
    format_service_measurement,
    gate_service_measurement,
    load_trajectory,
    measure_service_scale,
    save_trajectory,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=os.path.join(REPO, "BENCH_service_scale.json"),
        help="trajectory file to gate against (default: repo root)",
    )
    parser.add_argument(
        "--tiers", default="1,2,4",
        help="comma-separated worker-process tiers (default 1,2,4)",
    )
    parser.add_argument(
        "--binaries", type=int, default=8,
        help="distinct binaries in the load set (default 8)",
    )
    parser.add_argument(
        "--clients", default="4,8,16",
        help="comma-separated warm-phase client ramp (default 4,8,16)",
    )
    parser.add_argument(
        "--jobs-per-client", type=int, default=4,
        help="warm-phase submissions per client (default 4)",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="artifact-store shards in the deployment under test",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.15,
        help="allowed fractional p99/throughput regression (default 0.15)",
    )
    parser.add_argument(
        "--min-scale", type=float, default=3.0,
        help="required max-tier warm vs 1-worker cold throughput ratio",
    )
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append this measurement to the trajectory under LABEL",
    )
    parser.add_argument(
        "--seed-baseline", action="store_true",
        help="with --record: seed a fresh baseline (skip the regression "
             "gates; the scale gate still applies)",
    )
    args = parser.parse_args(argv)

    try:
        tiers = tuple(int(x) for x in args.tiers.split(","))
        clients_ramp = tuple(int(x) for x in args.clients.split(","))
    except ValueError:
        print("service-gate: --tiers/--clients must be comma-separated "
              "integers", file=sys.stderr)
        return 2
    try:
        trajectory = load_trajectory(args.baseline, workload=SERVICE_WORKLOAD)
    except ValueError as error:
        print(f"service-gate: {error}", file=sys.stderr)
        return 2

    print(f"service-gate: driving the service tier at "
          f"{'/'.join(map(str, tiers))} workers "
          f"({args.binaries} binaries, clients {args.clients})...")
    record = measure_service_scale(
        tiers=tiers,
        n_binaries=args.binaries,
        clients_ramp=clients_ramp,
        jobs_per_client=args.jobs_per_client,
        shards=args.shards,
    )
    print(format_service_measurement(record))
    print()

    if args.record and args.seed_baseline:
        # Seeding: only the self-contained scale gate applies.
        result = gate_service_measurement(
            record, trajectory, min_scale=args.min_scale,
            max_regression=float("inf"),
        ) if trajectory.baseline is not None else None
        scale_ok = record["scale_warm_max_vs_cold_1w"] >= args.min_scale
        if not scale_ok:
            print(f"service-gate: FAIL: seed scale ratio "
                  f"{record['scale_warm_max_vs_cold_1w']:.2f}x < "
                  f"{args.min_scale:.1f}x", file=sys.stderr)
            return 1
        trajectory.append(record, label=args.record, role=ROLE_SERVICE)
        save_trajectory(trajectory, args.baseline)
        print(f"service-gate: recorded baseline entry '{args.record}' "
              f"in {args.baseline}")
        print("service-gate: baseline seeded (regression gates skipped)")
        return 0

    result = gate_service_measurement(
        record, trajectory,
        max_regression=args.max_regression,
        min_scale=args.min_scale,
    )
    if result.p99_ratio is not None:
        print(f"service-gate: vs latest entry "
              f"'{trajectory.baseline.get('label', '?')}': "
              f"{result.p99_ratio:.3f}x normalized warm p99 "
              f"(max allowed {1 + args.max_regression:.2f}x)")
    if result.throughput_ratio is not None:
        print(f"service-gate: normalized warm throughput ratio "
              f"{result.throughput_ratio:.3f}x "
              f"(min allowed {1 - args.max_regression:.2f}x)")
    print(f"service-gate: steady-state scale ratio "
          f"{result.scale_ratio:.2f}x (required >= {args.min_scale:.1f}x)")

    if args.record:
        trajectory.append(record, label=args.record, role=ROLE_SERVICE)
        save_trajectory(trajectory, args.baseline)
        print(f"service-gate: recorded entry '{args.record}' "
              f"in {args.baseline}")

    if not result.ok:
        for problem in result.problems:
            print(f"service-gate: FAIL: {problem}", file=sys.stderr)
        return 1
    print("service-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
