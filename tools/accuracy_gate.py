#!/usr/bin/env python3
"""Accuracy gate (`make eval-gate`, enforced in CI).

Re-runs the evaluation subsystem (:mod:`repro.eval`) at a fixed small
scale and gates the result against the committed
``BENCH_eval_accuracy.json`` trajectory:

* fail if B-Side shows a false negative on any validation app it
  completes (min per-app recall < 1.0 — the paper's validity criterion);
* fail if B-Side's aggregate recall drops below the latest recorded
  trajectory entry's at the same (scale, seed) workload;
* fail if any baseline's aggregate F1 beats B-Side's;
* fail unless both indirect-signature configurations were scored and
  the sig-filter configuration's precision is at least the unfiltered
  one's with aggregate recall exactly 1.0 (the refinement may only
  remove false positives).

The evaluation is fully deterministic for a fixed ``(scale, seed)`` —
no timing, no machine dependence — so the gates run with zero slack by
default.

Usage::

    python tools/accuracy_gate.py                  # gate only
    python tools/accuracy_gate.py --record LABEL   # gate, then append
    python tools/accuracy_gate.py --record LABEL --seed-baseline
                                                   # first-ever entry

Exit status: 0 gates pass, 1 a gate failed, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.eval import (  # noqa: E402
    EvalConfig,
    format_gate_diff,
    gate_accuracy,
    run_eval,
)
from repro.eval.gate import GATE_SCALE, GATE_SEED  # noqa: E402
from repro.perf import (  # noqa: E402
    ACCURACY_WORKLOAD,
    ROLE_ACCURACY,
    load_trajectory,
    save_trajectory,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO, "BENCH_eval_accuracy.json"),
        help="trajectory file to gate against (default: repo root)",
    )
    parser.add_argument(
        "--scale", type=float, default=GATE_SCALE,
        help=f"corpus scale for the gating run (default {GATE_SCALE})",
    )
    parser.add_argument(
        "--seed", type=int, default=GATE_SEED,
        help=f"corpus seed for the gating run (default {GATE_SEED})",
    )
    parser.add_argument(
        "--recall-slack", type=float, default=0.0,
        help="allowed drop in B-Side aggregate recall vs the recorded "
             "baseline (default 0.0: none)",
    )
    parser.add_argument(
        "--f1-margin", type=float, default=0.0,
        help="margin by which a baseline may approach B-Side's F1 "
             "without failing (default 0.0)",
    )
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append this evaluation to the trajectory under LABEL",
    )
    parser.add_argument(
        "--seed-baseline", action="store_true",
        help="with --record: allow a trajectory with no comparable "
             "entry (first entry at this workload); structural gates "
             "still apply",
    )
    args = parser.parse_args(argv)
    if args.seed_baseline and not args.record:
        parser.error("--seed-baseline requires --record LABEL")

    try:
        trajectory = load_trajectory(args.baseline, workload=ACCURACY_WORKLOAD)
    except ValueError as error:
        print(f"accuracy-gate: {error}", file=sys.stderr)
        return 2
    print(f"accuracy-gate: evaluating at scale {args.scale:g}, "
          f"seed {args.seed}...")
    report = run_eval(EvalConfig(scale=args.scale, seed=args.seed))
    record = report.to_record()
    print(format_gate_diff(record, trajectory))
    print()

    result = gate_accuracy(
        record, trajectory,
        recall_slack=args.recall_slack,
        f1_margin=args.f1_margin,
        require_baseline=not args.seed_baseline,
        require_sig_ablation=True,
    )

    if args.record and result.ok:
        trajectory.append(record, label=args.record, role=ROLE_ACCURACY)
        save_trajectory(trajectory, args.baseline)
        print(f"accuracy-gate: recorded entry '{args.record}' "
              f"in {args.baseline}")

    if not result.ok:
        for problem in result.problems:
            print(f"accuracy-gate: FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"accuracy-gate: PASS (B-Side recall {result.recall:.4f}, "
          f"F1 {result.f1:.4f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
